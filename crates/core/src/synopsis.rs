//! Per-shard attribute synopses: compact summaries of a shard's
//! resident subscriptions that let publish skip shards with zero
//! candidates.
//!
//! Load-aware placement (PRs 4/5) balances the *cost* of matching but
//! never reduces it: every publish still fans out to all `S` shards.
//! The synopsis turns that `O(S)` walk into `O(shards that could
//! match)`: each shard maintains, next to its [`ShardTranslation`], a
//! per-attribute summary of the **required conjuncts** of its
//! residents, and the publish pipelines consult it under the shard
//! read lock they already hold before doing any matching work.
//!
//! # Conservativeness contract
//!
//! A synopsis may admit a shard that turns out to match nothing, but it
//! must **never** exclude a shard holding a matching subscription. The
//! contract rests on two facts:
//!
//! 1. For each resident, the synopsis indexes at most one **required
//!    conjunct** — a predicate that must be satisfied for the whole
//!    expression to be true (the top-level predicate, or any predicate
//!    reachable through top-level conjunctions only). Disjunctions and
//!    negations contribute no required predicate and degrade to
//!    *always candidate*.
//! 2. Under the open-world predicate semantics, *every* comparison
//!    operator requires the attribute to be present with a satisfying
//!    value, and the per-operator admission tests below are supersets
//!    of satisfaction: equality admits on an exact value hit, ordered
//!    comparisons admit any event value inside the [min, max] hull of
//!    the registered bounds, and everything else (≠, string search)
//!    admits on attribute presence alone.
//!
//! All summaries are **counting** structures, so they support removal
//! exactly — no rebuilds on unsubscribe, migration, or shard drain.
//! What was indexed for a resident is remembered per local slot, which
//! makes removal possible from every teardown path (including a
//! migration completing a racing unsubscribe, where the subscription's
//! expression is no longer reachable through the directory).
//!
//! [`ShardTranslation`]: crate::ShardTranslation

use std::collections::{BTreeMap, HashMap};
use std::mem;
use std::sync::Arc;

use boolmatch_expr::{CompareOp, Expr, Predicate};
use boolmatch_types::{Event, Value};

use crate::SubscriptionId;

/// Returns the required conjunct the synopsis indexes for `expr`:
/// the first equality predicate reachable through top-level
/// conjunctions, else the first such predicate of any operator, else
/// `None` (the subscription is an always-candidate).
///
/// Equality predicates are preferred because they are the most
/// selective summary entries — and the same preference defines the
/// *dominant equality predicate* that clustering placement hashes on,
/// so co-placement and pruning agree on what "similar" means.
fn required_pred(expr: &Expr) -> Option<&Predicate> {
    fn walk<'e>(
        expr: &'e Expr,
        first: &mut Option<&'e Predicate>,
        first_eq: &mut Option<&'e Predicate>,
    ) {
        match expr {
            Expr::Pred(p) => {
                if first.is_none() {
                    *first = Some(p);
                }
                if first_eq.is_none() && p.op() == CompareOp::Eq {
                    *first_eq = Some(p);
                }
            }
            // Every child of a conjunction must hold, so any predicate
            // found below (through nested conjunctions) is required.
            Expr::And(children) => {
                for child in children {
                    if first_eq.is_some() {
                        return;
                    }
                    walk(child, first, first_eq);
                }
            }
            // Or/Not children are not individually required.
            _ => {}
        }
    }
    let (mut first, mut first_eq) = (None, None);
    walk(expr, &mut first, &mut first_eq);
    first_eq.or(first)
}

/// The attribute of `expr`'s dominant equality predicate — the
/// attribute [`PlacementPolicy::ClusterByAttribute`] clusters on —
/// if the expression has a required equality conjunct.
///
/// [`PlacementPolicy::ClusterByAttribute`]: crate::PlacementPolicy::ClusterByAttribute
pub fn dominant_eq_attr(expr: &Expr) -> Option<&str> {
    required_pred(expr)
        .filter(|p| p.op() == CompareOp::Eq)
        .map(Predicate::attr)
}

/// Deterministic 64-bit FNV-1a over an attribute name.
///
/// Clustering placement maps this hash onto a preferred shard; a fixed
/// hash (rather than `std`'s keyed hasher) keeps placement reproducible
/// across runs, which the deterministic workload and bench suites rely
/// on.
pub fn attribute_hash(attr: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in attr.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What the synopsis indexed for one resident: the admission test
/// derived from its required conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Constraint {
    /// No required conjunct (top-level disjunction/negation): the
    /// resident is a candidate for every event.
    Always,
    /// Required `attr = value`: admitted on an exact value hit.
    Eq(Arc<str>, Value),
    /// Required `attr > value` / `attr >= value`: admitted when the
    /// event value reaches the smallest registered lower bound.
    Lower(Arc<str>, Value),
    /// Required `attr < value` / `attr <= value`: admitted when the
    /// event value is within the largest registered upper bound.
    Upper(Arc<str>, Value),
    /// Required `attr != value` or string search: admitted whenever the
    /// attribute is present at all.
    Presence(Arc<str>),
}

impl Constraint {
    fn for_expr(expr: &Expr) -> Constraint {
        match required_pred(expr) {
            None => Constraint::Always,
            Some(p) => {
                let attr: Arc<str> = Arc::from(p.attr());
                match p.op() {
                    CompareOp::Eq => Constraint::Eq(attr, p.value().clone()),
                    CompareOp::Gt | CompareOp::Ge => Constraint::Lower(attr, p.value().clone()),
                    CompareOp::Lt | CompareOp::Le => Constraint::Upper(attr, p.value().clone()),
                    _ => Constraint::Presence(attr),
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Constraint::Always => 0,
            Constraint::Eq(a, v) | Constraint::Lower(a, v) | Constraint::Upper(a, v) => {
                a.len() + v.heap_bytes()
            }
            Constraint::Presence(a) => a.len(),
        }
    }
}

/// Counting summary of every indexed constraint on one attribute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct AttrSummary {
    /// Residents requiring `attr = value`, keyed by value.
    eq: HashMap<Value, u32>,
    /// Multiset of `>`/`>=` bounds; admission tests against the min.
    lower: BTreeMap<Value, u32>,
    /// Multiset of `<`/`<=` bounds; admission tests against the max.
    upper: BTreeMap<Value, u32>,
    /// Residents requiring only that the attribute is present.
    presence: u32,
}

impl AttrSummary {
    fn is_empty(&self) -> bool {
        self.presence == 0 && self.eq.is_empty() && self.lower.is_empty() && self.upper.is_empty()
    }

    // Cross-kind note: `Value`'s total order sorts by kind first, and
    // `CompareOp::eval` never satisfies an ordered comparison across
    // kinds — so an event value of kind K satisfies a bound only if the
    // bound also has kind K, in which case it lies between the
    // multiset's global min and max. Testing the hull across kinds can
    // only over-admit, which conservativeness allows.
    fn admits(&self, value: &Value) -> bool {
        if self.presence > 0 || self.eq.contains_key(value) {
            return true;
        }
        if let Some((min, _)) = self.lower.first_key_value() {
            if value >= min {
                return true;
            }
        }
        if let Some((max, _)) = self.upper.last_key_value() {
            if value <= max {
                return true;
            }
        }
        false
    }

    fn heap_bytes(&self) -> usize {
        let entries = self.eq.capacity() + self.lower.len() + self.upper.len();
        let values: usize = self
            .eq
            .keys()
            .chain(self.lower.keys())
            .chain(self.upper.keys())
            .map(Value::heap_bytes)
            .sum();
        entries * mem::size_of::<(Value, u32)>() + values
    }
}

/// A compact, conservative summary of one shard's resident
/// subscriptions, consulted on publish to skip shards with zero
/// candidates.
///
/// Maintained wherever the shard's [`ShardTranslation`] is maintained
/// (subscribe, unsubscribe, migration, resize) under the per-shard
/// write lock, and read on the publish path under the per-shard read
/// lock — it adds no locking of its own. See the [module docs](self)
/// for the conservativeness contract.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{ShardSynopsis, SubscriptionId};
/// use boolmatch_expr::Expr;
/// use boolmatch_types::Event;
///
/// let mut synopsis = ShardSynopsis::new();
/// synopsis.insert(SubscriptionId::from_index(0), &Expr::parse("sym = \"IBM\" and px > 10")?);
///
/// let ibm = Event::builder().attr("sym", "IBM").attr("px", 12_i64).build();
/// let other = Event::builder().attr("sym", "HPQ").attr("px", 12_i64).build();
/// assert!(synopsis.admits(&ibm));
/// assert!(!synopsis.admits(&other), "no resident requires sym = HPQ");
///
/// synopsis.remove(SubscriptionId::from_index(0));
/// assert!(!synopsis.admits(&ibm), "empty shards admit nothing");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// [`ShardTranslation`]: crate::ShardTranslation
#[derive(Debug, Clone, Default)]
pub struct ShardSynopsis {
    /// Per-attribute summaries over the indexed required conjuncts.
    attrs: HashMap<Arc<str>, AttrSummary>,
    /// Residents with no required conjunct: candidates for everything.
    always: usize,
    /// What was indexed per local slot, so removal never needs the
    /// subscription's expression (which teardown paths completing a
    /// racing unsubscribe no longer have).
    slots: Vec<Option<Constraint>>,
    /// Residents currently indexed.
    live: usize,
}

impl ShardSynopsis {
    /// Creates an empty synopsis.
    pub fn new() -> Self {
        ShardSynopsis::default()
    }

    /// Indexes the resident registered under `local`. Called under the
    /// shard write lock, wherever the translation map gains the slot.
    pub fn insert(&mut self, local: SubscriptionId, expr: &Expr) {
        let constraint = Constraint::for_expr(expr);
        self.add(&constraint);
        let slot = local.index();
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, None);
        }
        debug_assert!(
            self.slots[slot].is_none(),
            "synopsis slot {slot} indexed twice"
        );
        self.slots[slot] = Some(constraint);
        self.live += 1;
    }

    /// Un-indexes the resident at `local`. A no-op when the slot is not
    /// indexed, mirroring `ShardTranslation::clear_if` tolerance on the
    /// racing teardown paths.
    pub fn remove(&mut self, local: SubscriptionId) {
        let Some(constraint) = self.slots.get_mut(local.index()).and_then(Option::take) else {
            return;
        };
        self.sub(&constraint);
        self.live -= 1;
    }

    // lint: hot-path — `admits` runs once per (event, shard) on every
    // publish, under the shard read lock, before any matching work.

    /// Whether the shard could hold a subscription matching `event`.
    ///
    /// `false` means *provably* zero candidates (the publish pipelines
    /// skip the shard entirely); `true` means the shard must be
    /// matched. Empty shards admit nothing.
    pub fn admits(&self, event: &Event) -> bool {
        if self.always > 0 {
            return true;
        }
        if self.live == 0 || self.attrs.is_empty() {
            return false;
        }
        event.iter().any(|(name, value)| {
            self.attrs
                .get(name)
                .is_some_and(|summary| summary.admits(value))
        })
    }

    /// Batch form of [`ShardSynopsis::admits`]: fills `skip_out[e]` with
    /// `skip[e] || !admits(events[e])` (an empty `skip` means no event
    /// is pre-skipped) and returns how many previously-live events this
    /// synopsis pruned — the per-(event, shard) count the batch paths
    /// add to [`crate::MatchStats::shards_pruned`] so batch and
    /// per-event walks report identical pruning stats.
    pub fn admits_batch(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        skip_out: &mut Vec<bool>,
    ) -> usize {
        debug_assert!(
            skip.is_empty() || skip.len() == events.len(),
            "skip mask must be empty or one flag per event"
        );
        skip_out.clear();
        skip_out.resize(events.len(), false);
        let mut pruned = 0;
        for (e, event) in events.iter().enumerate() {
            if skip.get(e).copied().unwrap_or(false) {
                skip_out[e] = true;
            } else if !self.admits(event) {
                skip_out[e] = true;
                pruned += 1;
            }
        }
        pruned
    }

    // lint: end-hot-path

    /// Residents currently indexed.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Residents indexed as always-candidates (no required conjunct).
    pub fn always_candidates(&self) -> usize {
        self.always
    }

    /// Whether the constraint this synopsis would index for `expr` is
    /// currently present — the per-resident conservativeness invariant
    /// the property tests check after churn and migration: every
    /// resident's indexed constraint must survive in its shard's
    /// synopsis.
    pub fn covers(&self, expr: &Expr) -> bool {
        match Constraint::for_expr(expr) {
            Constraint::Always => self.always > 0,
            Constraint::Eq(attr, value) => self
                .attrs
                .get(&attr)
                .is_some_and(|s| s.eq.get(&value).copied().unwrap_or(0) > 0),
            Constraint::Lower(attr, value) => self
                .attrs
                .get(&attr)
                .is_some_and(|s| s.lower.get(&value).copied().unwrap_or(0) > 0),
            Constraint::Upper(attr, value) => self
                .attrs
                .get(&attr)
                .is_some_and(|s| s.upper.get(&value).copied().unwrap_or(0) > 0),
            Constraint::Presence(attr) => self.attrs.get(&attr).is_some_and(|s| s.presence > 0),
        }
    }

    /// Whether `other` summarises the same resident population:
    /// identical attribute summaries and always-candidate count. Slot
    /// numbering is ignored, so a synopsis rebuilt from scratch can be
    /// compared against one maintained incrementally through churn.
    pub fn agrees_with(&self, other: &ShardSynopsis) -> bool {
        self.live == other.live && self.always == other.always && self.attrs == other.attrs
    }

    /// Approximate heap bytes owned by the synopsis — charged to
    /// `memory_usage` as routing support, like the translation maps.
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.slots.capacity() * mem::size_of::<Option<Constraint>>()
            + self.attrs.capacity() * mem::size_of::<(Arc<str>, AttrSummary)>();
        for (name, summary) in &self.attrs {
            bytes += name.len() + summary.heap_bytes();
        }
        for constraint in self.slots.iter().flatten() {
            bytes += constraint.heap_bytes();
        }
        bytes
    }

    fn add(&mut self, constraint: &Constraint) {
        match constraint {
            Constraint::Always => self.always += 1,
            Constraint::Eq(attr, value) => {
                *self
                    .attrs
                    .entry(Arc::clone(attr))
                    .or_default()
                    .eq
                    .entry(value.clone())
                    .or_insert(0) += 1;
            }
            Constraint::Lower(attr, value) => {
                *self
                    .attrs
                    .entry(Arc::clone(attr))
                    .or_default()
                    .lower
                    .entry(value.clone())
                    .or_insert(0) += 1;
            }
            Constraint::Upper(attr, value) => {
                *self
                    .attrs
                    .entry(Arc::clone(attr))
                    .or_default()
                    .upper
                    .entry(value.clone())
                    .or_insert(0) += 1;
            }
            Constraint::Presence(attr) => {
                self.attrs.entry(Arc::clone(attr)).or_default().presence += 1;
            }
        }
    }

    fn sub(&mut self, constraint: &Constraint) {
        fn drop_count(map_count: Option<&mut u32>) -> bool {
            let count = map_count.expect("removed constraint was indexed");
            *count -= 1;
            *count == 0
        }
        let attr = match constraint {
            Constraint::Always => {
                self.always -= 1;
                return;
            }
            Constraint::Eq(attr, _)
            | Constraint::Lower(attr, _)
            | Constraint::Upper(attr, _)
            | Constraint::Presence(attr) => attr,
        };
        let summary = self
            .attrs
            .get_mut(attr)
            .expect("removed constraint's attribute is summarised");
        // Entries are removed at count zero so the lower/upper hulls
        // stay tight and value churn cannot grow the maps unboundedly.
        match constraint {
            Constraint::Always => unreachable!("handled above"),
            Constraint::Eq(_, value) => {
                if drop_count(summary.eq.get_mut(value)) {
                    summary.eq.remove(value);
                }
            }
            Constraint::Lower(_, value) => {
                if drop_count(summary.lower.get_mut(value)) {
                    summary.lower.remove(value);
                }
            }
            Constraint::Upper(_, value) => {
                if drop_count(summary.upper.get_mut(value)) {
                    summary.upper.remove(value);
                }
            }
            Constraint::Presence(_) => summary.presence -= 1,
        }
        if summary.is_empty() {
            self.attrs.remove(attr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> SubscriptionId {
        SubscriptionId::from_index(i)
    }

    fn expr(text: &str) -> Expr {
        Expr::parse(text).expect("test expression parses")
    }

    fn event(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|&(n, v)| (n, v)))
    }

    #[test]
    fn equality_conjunct_prunes_other_values() {
        let mut s = ShardSynopsis::new();
        s.insert(id(0), &expr("group = 3 and tick >= 5"));
        assert!(s.admits(&event(&[("group", 3), ("tick", 9)])));
        assert!(
            !s.admits(&event(&[("group", 4), ("tick", 9)])),
            "only the required equality is indexed, so group = 4 cannot match here"
        );
        assert!(
            !s.admits(&event(&[("tick", 9)])),
            "the required attribute is absent: open-world semantics make a match impossible"
        );
    }

    #[test]
    fn range_bounds_admit_the_hull_only() {
        let mut s = ShardSynopsis::new();
        s.insert(id(0), &expr("price > 10"));
        s.insert(id(1), &expr("price >= 100"));
        s.insert(id(2), &expr("qty < 5"));
        assert!(s.admits(&event(&[("price", 11)])));
        assert!(
            s.admits(&event(&[("price", 10)])),
            "Gt folded to >= min bound"
        );
        assert!(!s.admits(&event(&[("price", 9)])));
        assert!(s.admits(&event(&[("qty", 5)])), "Lt folded to <= max bound");
        assert!(!s.admits(&event(&[("qty", 6)])));
        // Removing the loosest bound tightens the hull.
        s.remove(id(0));
        assert!(!s.admits(&event(&[("price", 50)])));
        assert!(s.admits(&event(&[("price", 100)])));
    }

    #[test]
    fn disjunctions_and_negations_are_always_candidates() {
        let mut s = ShardSynopsis::new();
        s.insert(id(0), &expr("a = 1 or b = 2"));
        assert!(
            s.admits(&event(&[("zzz", 0)])),
            "or-rooted: always admitted"
        );
        assert_eq!(s.always_candidates(), 1);
        s.insert(id(1), &expr("not a = 1"));
        s.remove(id(0));
        assert!(
            s.admits(&event(&[("zzz", 0)])),
            "not-rooted: always admitted"
        );
        s.remove(id(1));
        assert!(
            !s.admits(&event(&[("zzz", 0)])),
            "empty shard admits nothing"
        );
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn required_conjunct_is_found_through_nested_ands() {
        // `(a > 1 and b = 2) and c = 3` — b = 2 is the first required
        // equality, and `not`/`or` children contribute nothing.
        let e = expr("a > 1 and b = 2 and c = 3 and (x = 1 or y = 2)");
        assert_eq!(dominant_eq_attr(&e), Some("b"));
        let mut s = ShardSynopsis::new();
        s.insert(id(0), &e);
        assert!(s.admits(&event(&[("b", 2)])));
        assert!(!s.admits(&event(&[("b", 3), ("x", 1)])));
        assert_eq!(dominant_eq_attr(&expr("a > 1 and b < 2")), None);
        assert_eq!(dominant_eq_attr(&expr("a = 1 or b = 2")), None);
    }

    #[test]
    fn ne_and_string_search_degrade_to_presence() {
        let mut s = ShardSynopsis::new();
        s.insert(id(0), &expr("a != 5"));
        assert!(
            s.admits(&event(&[("a", 5)])),
            "presence-only: a != 5 is not checkable from the summary"
        );
        assert!(!s.admits(&event(&[("b", 5)])));
        let mut t = ShardSynopsis::new();
        t.insert(id(0), &Expr::parse("name prefix \"bo\"").unwrap());
        assert!(t.admits(&Event::builder().attr("name", "x").build()));
        assert!(!t.admits(&Event::builder().attr("other", "bo").build()));
    }

    #[test]
    fn admission_is_conservative_under_eval() {
        // Any event the expression matches must be admitted.
        let exprs = [
            "a = 1",
            "a = 1 and b > 2",
            "a > 1 and b < 2",
            "a != 1 and b = 2",
            "a = 1 or b = 2",
            "not (a = 1)",
            "a >= 3 and (b = 1 or c = 2)",
        ];
        let mut s = ShardSynopsis::new();
        for (i, text) in exprs.iter().enumerate() {
            s.insert(id(i), &expr(text));
        }
        for a in -1..4_i64 {
            for b in -1..4_i64 {
                let e = event(&[("a", a), ("b", b), ("c", 2)]);
                let matches = exprs.iter().any(|t| expr(t).eval_event(&e));
                assert!(
                    !matches || s.admits(&e),
                    "conservativeness violated for a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn covers_tracks_residents_exactly() {
        let mut s = ShardSynopsis::new();
        let e1 = expr("a = 1 and b > 2");
        let e2 = expr("a = 1 or b = 2");
        s.insert(id(0), &e1);
        s.insert(id(1), &e2);
        assert!(s.covers(&e1));
        assert!(s.covers(&e2));
        s.remove(id(0));
        assert!(!s.covers(&e1));
        assert!(s.covers(&e2));
    }

    #[test]
    fn rebuild_agrees_with_incremental_maintenance() {
        let exprs: Vec<Expr> = (0..20)
            .map(|i| expr(&format!("g{} = {} and tick >= {}", i % 3, i % 5, i)))
            .collect();
        let mut churned = ShardSynopsis::new();
        for (i, e) in exprs.iter().enumerate() {
            churned.insert(id(i), e);
        }
        for i in (0..20).step_by(2) {
            churned.remove(id(i));
        }
        let mut rebuilt = ShardSynopsis::new();
        for (i, e) in exprs.iter().enumerate().skip(1).step_by(2) {
            rebuilt.insert(id(100 + i), e); // different slots on purpose
        }
        assert!(churned.agrees_with(&rebuilt));
        assert!(!churned.agrees_with(&ShardSynopsis::new()));
    }

    #[test]
    fn removal_is_idempotent_for_racing_teardown() {
        let mut s = ShardSynopsis::new();
        s.insert(id(3), &expr("a = 1"));
        s.remove(id(3));
        s.remove(id(3)); // the raced path loses and must be a no-op
        s.remove(id(99)); // never-indexed slot
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn heap_bytes_grow_and_shrink_with_contents() {
        let mut s = ShardSynopsis::new();
        let empty = s.heap_bytes();
        for i in 0..50 {
            s.insert(id(i), &expr(&format!("attr{i} = {i}")));
        }
        assert!(s.heap_bytes() > empty, "contents are charged");
        for i in 0..50 {
            s.remove(id(i));
        }
        assert!(s.attrs.is_empty(), "summaries drain with their residents");
    }

    #[test]
    fn attribute_hash_is_fixed() {
        // FNV-1a reference values: placement must not drift across runs
        // or toolchains.
        assert_eq!(attribute_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(attribute_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(attribute_hash("group"), attribute_hash("tick"));
    }
}
