//! Storage for encoded subscription trees.
//!
//! The paper's *subscription location table* maps `id(s)` to `loc(s)`,
//! the memory address of the encoded tree. [`TreeArena`] is that
//! memory: fixed-size blocks with a free list, so `loc(s)` is a stable
//! `(offset, len)` pair and unsubscription returns the block for reuse.
//!
//! Blocks are allocated in [`BLOCK_SIZE`] chunks and **never moved or
//! re-grown**: no allocation is ever copied (stable `loc(s)`), and the
//! allocator slack is bounded by one block instead of the ~50% a
//! doubling `Vec` would average — this matters because the engines'
//! memory accounting feeds the paper's 512 MB wall model.

use std::fmt;

/// Size of one arena block. Also the maximum size of a single encoded
/// subscription tree (≈200 000 predicates — far beyond any workload).
pub const BLOCK_SIZE: usize = 1 << 20;

/// The location of one encoded subscription tree inside a
/// [`TreeArena`] — `loc(s)` in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    offset: u32,
    len: u32,
}

impl Loc {
    /// The distinguished empty location (never produced by an arena);
    /// used by location tables as a vacancy sentinel.
    pub fn empty() -> Loc {
        Loc { offset: 0, len: 0 }
    }

    /// Global byte offset of the tree in the arena.
    pub fn offset(self) -> usize {
        self.offset as usize
    }

    /// Encoded length in bytes.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether this is the vacancy sentinel.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    fn block(self) -> usize {
        self.offset() / BLOCK_SIZE
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}+{}", self.offset, self.len)
    }
}

/// A block-based byte arena with reuse; see the module documentation.
///
/// # Examples
///
/// ```
/// use boolmatch_core::arena::TreeArena;
///
/// let mut arena = TreeArena::new();
/// let a = arena.insert(&[1, 2, 3]);
/// let b = arena.insert(&[4, 5]);
/// assert_eq!(arena.get(a), &[1, 2, 3]);
/// arena.remove(a);
/// // The freed space is reused by a fitting allocation.
/// let c = arena.insert(&[9, 9]);
/// assert_eq!(c.offset(), a.offset());
/// assert_eq!(arena.get(b), &[4, 5]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TreeArena {
    blocks: Vec<Box<[u8]>>,
    /// Bytes bump-allocated in the last block.
    tail_used: usize,
    /// Sorted by offset; adjacent blocks are coalesced, but never
    /// across a block boundary (allocations must not span blocks).
    free: Vec<Loc>,
    live_bytes: usize,
    live_allocs: usize,
}

impl TreeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into the arena, returning its location.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or longer than [`BLOCK_SIZE`] (the
    /// engine validates tree sizes before insertion).
    pub fn insert(&mut self, data: &[u8]) -> Loc {
        assert!(!data.is_empty(), "cannot store an empty tree");
        assert!(
            data.len() <= BLOCK_SIZE,
            "tree of {} bytes exceeds the {} byte block size",
            data.len(),
            BLOCK_SIZE
        );
        let len = data.len() as u32;

        // First fit over the free list.
        if let Some(pos) = self.free.iter().position(|b| b.len >= len) {
            let block = self.free[pos];
            let loc = Loc {
                offset: block.offset,
                len,
            };
            if block.len == len {
                self.free.remove(pos);
            } else {
                self.free[pos] = Loc {
                    offset: block.offset + len,
                    len: block.len - len,
                };
            }
            self.write(loc, data);
            self.live_bytes += data.len();
            self.live_allocs += 1;
            return loc;
        }

        // Bump-allocate in the tail block, opening a new one if the
        // remainder is too small (the remainder joins the free list).
        if self.blocks.is_empty() || BLOCK_SIZE - self.tail_used < data.len() {
            if let Some(last) = self.blocks.len().checked_sub(1) {
                let remainder = BLOCK_SIZE - self.tail_used;
                if remainder > 0 {
                    self.release(Loc {
                        offset: (last * BLOCK_SIZE + self.tail_used) as u32,
                        len: remainder as u32,
                    });
                }
            }
            self.blocks.push(vec![0u8; BLOCK_SIZE].into_boxed_slice());
            self.tail_used = 0;
        }
        let loc = Loc {
            offset: ((self.blocks.len() - 1) * BLOCK_SIZE + self.tail_used) as u32,
            len,
        };
        self.tail_used += data.len();
        self.write(loc, data);
        self.live_bytes += data.len();
        self.live_allocs += 1;
        loc
    }

    fn write(&mut self, loc: Loc, data: &[u8]) {
        let start = loc.offset() % BLOCK_SIZE;
        self.blocks[loc.block()][start..start + data.len()].copy_from_slice(data);
    }

    /// The bytes stored at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of bounds. Reading a freed location is
    /// *not* detected (the caller — the engine's location table — owns
    /// liveness).
    pub fn get(&self, loc: Loc) -> &[u8] {
        let start = loc.offset() % BLOCK_SIZE;
        &self.blocks[loc.block()][start..start + loc.len()]
    }

    /// Returns `loc`'s bytes to the free list, coalescing with adjacent
    /// free space in the same block.
    pub fn remove(&mut self, loc: Loc) {
        self.live_bytes -= loc.len();
        self.live_allocs -= 1;
        self.release(loc);
    }

    fn release(&mut self, loc: Loc) {
        let pos = self.free.partition_point(|b| b.offset < loc.offset);
        let mut merged = loc;
        // Coalesce with the free block after, if contiguous in the
        // same arena block.
        if pos < self.free.len() {
            let next = self.free[pos];
            if merged.offset + merged.len == next.offset && merged.block() == next.block() {
                merged.len += next.len;
                self.free.remove(pos);
            }
        }
        // ... and with the one before.
        if pos > 0 {
            let before = self.free[pos - 1];
            if before.offset + before.len == merged.offset && before.block() == merged.block() {
                self.free[pos - 1] = Loc {
                    offset: before.offset,
                    len: before.len + merged.len,
                };
                return;
            }
        }
        self.free.insert(pos, merged);
    }

    /// Bytes in live allocations.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Number of live allocations.
    pub fn live_allocs(&self) -> usize {
        self.live_allocs
    }

    /// Total bytes held from the allocator.
    pub fn capacity_bytes(&self) -> usize {
        self.blocks.len() * BLOCK_SIZE
    }

    /// Bytes of the arena ever touched by allocations (full blocks plus
    /// the used tail). Unlike [`TreeArena::capacity_bytes`] this
    /// excludes the untouched remainder of the newest block.
    pub fn used_span(&self) -> usize {
        match self.blocks.len() {
            0 => 0,
            n => (n - 1) * BLOCK_SIZE + self.tail_used,
        }
    }

    /// Fraction of the touched span not occupied by live allocations;
    /// 0.0 for an empty arena.
    pub fn fragmentation(&self) -> f64 {
        let span = self.used_span();
        if span == 0 {
            return 0.0;
        }
        1.0 - self.live_bytes as f64 / span as f64
    }

    /// Approximate heap bytes owned by the arena.
    pub fn heap_bytes(&self) -> usize {
        self.capacity_bytes()
            + self.blocks.capacity() * std::mem::size_of::<Box<[u8]>>()
            + self.free.capacity() * std::mem::size_of::<Loc>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut a = TreeArena::new();
        let x = a.insert(&[1, 2, 3]);
        let y = a.insert(&[4]);
        assert_eq!(a.get(x), &[1, 2, 3]);
        assert_eq!(a.get(y), &[4]);
        assert_eq!(a.live_bytes(), 4);
        assert_eq!(a.live_allocs(), 2);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn empty_insert_panics() {
        TreeArena::new().insert(&[]);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_insert_panics() {
        TreeArena::new().insert(&vec![0u8; BLOCK_SIZE + 1]);
    }

    #[test]
    fn freed_block_is_reused_exact_fit() {
        let mut a = TreeArena::new();
        let x = a.insert(&[1; 10]);
        let _y = a.insert(&[2; 10]);
        a.remove(x);
        let z = a.insert(&[3; 10]);
        assert_eq!(z.offset(), 0);
        assert_eq!(a.get(z), &[3; 10]);
    }

    #[test]
    fn freed_block_is_split_on_partial_fit() {
        let mut a = TreeArena::new();
        let x = a.insert(&[1; 10]);
        let _guard = a.insert(&[2; 4]);
        a.remove(x);
        let small = a.insert(&[3; 4]);
        assert_eq!(small.offset(), 0);
        let rest = a.insert(&[4; 6]);
        assert_eq!(rest.offset(), 4);
        assert_eq!(a.live_bytes(), 14);
    }

    #[test]
    fn adjacent_free_blocks_coalesce() {
        let mut a = TreeArena::new();
        let x = a.insert(&[1; 8]);
        let y = a.insert(&[2; 8]);
        let z = a.insert(&[3; 8]);
        let _tail = a.insert(&[4; 8]);
        a.remove(x);
        a.remove(z);
        a.remove(y);
        // One coalesced 24-byte run serves a 20-byte allocation.
        let big = a.insert(&[5; 20]);
        assert_eq!(big.offset(), 0);
    }

    #[test]
    fn allocations_never_span_blocks() {
        let mut a = TreeArena::new();
        // Nearly fill the first block.
        let big = a.insert(&vec![7u8; BLOCK_SIZE - 10]);
        // This does not fit the 10-byte remainder: a new block opens.
        let next = a.insert(&[8u8; 64]);
        assert_eq!(next.offset(), BLOCK_SIZE);
        assert_eq!(a.capacity_bytes(), 2 * BLOCK_SIZE);
        // The 10-byte remainder is on the free list and still usable.
        let small = a.insert(&[9u8; 10]);
        assert_eq!(small.offset(), BLOCK_SIZE - 10);
        assert_eq!(a.get(big).len(), BLOCK_SIZE - 10);
        assert_eq!(a.get(next), &[8u8; 64]);
        assert_eq!(a.get(small), &[9u8; 10]);
    }

    #[test]
    fn no_coalescing_across_block_boundaries() {
        let mut a = TreeArena::new();
        let first = a.insert(&vec![1u8; BLOCK_SIZE]); // exactly one block
        let second = a.insert(&[2u8; 100]); // starts block 2
        a.remove(first);
        a.remove(second);
        // A block-sized allocation must land at block 0, not bridge the
        // two free runs.
        let again = a.insert(&vec![3u8; BLOCK_SIZE]);
        assert_eq!(again.offset(), 0);
    }

    #[test]
    fn fragmentation_reporting() {
        let mut a = TreeArena::new();
        assert_eq!(a.fragmentation(), 0.0);
        let x = a.insert(&[1; 50]);
        let _y = a.insert(&[2; 50]);
        assert!(a.fragmentation().abs() < 1e-9);
        a.remove(x);
        assert!((a.fragmentation() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn churn_does_not_grow_unboundedly() {
        let mut a = TreeArena::new();
        let mut locs: Vec<Loc> = (0..100).map(|_| a.insert(&[7; 16])).collect();
        let high_water = a.capacity_bytes();
        for _ in 0..50 {
            for loc in locs.drain(..) {
                a.remove(loc);
            }
            locs = (0..100).map(|_| a.insert(&[8; 16])).collect();
        }
        assert_eq!(a.capacity_bytes(), high_water);
        assert_eq!(a.live_allocs(), 100);
    }

    #[test]
    fn loc_empty_sentinel() {
        assert!(Loc::empty().is_empty());
        let mut a = TreeArena::new();
        assert!(!a.insert(&[1]).is_empty());
    }

    #[test]
    fn heap_bytes_is_block_granular() {
        let mut a = TreeArena::new();
        a.insert(&[0u8; 100]);
        assert!(a.heap_bytes() >= BLOCK_SIZE);
        assert!(a.heap_bytes() < 2 * BLOCK_SIZE);
    }
}
