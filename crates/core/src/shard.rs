//! A sharded composite engine: `S` inner engines behind one
//! [`FilterEngine`] face.
//!
//! Partitioning subscriptions across independent engine shards is the
//! standard route to write-scalable content-based matching: each
//! subscribe/unsubscribe touches exactly one shard, and each shard is
//! just a smaller engine, so per-event phase-2 cost per shard shrinks
//! with `S`. The composite engine here keeps the partitioning invisible
//! — it implements [`FilterEngine`] itself, so the sweep harness,
//! tests, and any single-threaded caller can use it transparently.
//!
//! Routing splits across two structures. The write-side
//! [`SubscriptionDirectory`] issues global ids in arrival order (the
//! *n*-th accepted subscription gets global id *n*, exactly as an
//! unsharded engine would assign — the shard-equivalence property
//! tests rely on this) and maps each id to whatever `(shard, local)`
//! slot currently backs it. Each shard additionally owns a read-side
//! [`ShardTranslation`] — its local → global reverse map — which is
//! all matching ever consults: translating a matched local id touches
//! only the shard that produced it, never the directory. Because the
//! id is **stable while the placement is not**, the engine supports
//! what stride arithmetic never could:
//!
//! * **load-aware placement** — [`FilterEngine::subscribe`] picks the
//!   least-loaded shard (round-robin tie-break), so a shard drained by
//!   unsubscribes is refilled instead of skipped past blindly;
//! * **live migration** — [`ShardedEngine::migrate`] /
//!   [`ShardedEngine::rebalance`] move subscriptions from overloaded to
//!   underloaded shards by re-subscribing the stored expression on the
//!   target and retiring the source entry, without changing any id;
//! * **incremental resizing** — [`ShardedEngine::resize`] grows or
//!   shrinks the shard vector, draining one shard at a time instead of
//!   rebuilding the world.
//!
//! **Locking is deliberately not here.** `ShardedEngine` is a plain
//! value with `&mut self` registration, like every other engine. The
//! broker achieves *concurrent* shard writes (and migration that only
//! stalls the two shards involved) by holding its shards in separate
//! `RwLock`s around a shared [`SubscriptionDirectory`]; see
//! `boolmatch-broker`.
//!
//! # Examples
//!
//! ```
//! use boolmatch_core::{EngineKind, FilterEngine, Matcher, ShardedEngine};
//! use boolmatch_expr::Expr;
//! use boolmatch_types::Event;
//!
//! let mut engine = Matcher::new(ShardedEngine::new(EngineKind::NonCanonical, 4));
//! let id = engine.subscribe(&Expr::parse("(a = 1 or b = 2) and c = 3")?)?;
//! engine.engine_mut().rebalance(); // no-op here: placement is already even
//! let event = Event::builder().attr("b", 2_i64).attr("c", 3_i64).build();
//! assert_eq!(engine.match_event(&event).matched, vec![id]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::sync::Arc;

use boolmatch_expr::Expr;
use boolmatch_types::Event;

use crate::engine::{EngineKind, FilterEngine, SubscribeError, UnsubscribeError};
use crate::pool::{BatchScratchPool, PooledBatchScratch, PooledScratch, ScratchPool};
use crate::routing::{PlacementPolicy, PredicateRouter, ShardTranslation, SubscriptionDirectory};
use crate::synopsis::{attribute_hash, dominant_eq_attr, ShardSynopsis};
use crate::{BatchScratch, FulfilledSet, MatchScratch, MatchStats, MemoryUsage, SubscriptionId};

/// A boxed engine usable as a shard.
pub type BoxedEngine = Box<dyn FilterEngine + Send + Sync>;

/// One shard: its engine plus the two read-side structures matching
/// consults — the local → global translation map and the attribute
/// synopsis pruning reads. Keeping both *with* the shard (instead of in
/// the shared directory) is what keeps the publish path off any shared
/// state — the broker's concurrent form protects all three together
/// under one per-shard lock.
struct ShardSlot {
    engine: BoxedEngine,
    translation: ShardTranslation,
    /// Conservative summary of the residents' required conjuncts;
    /// maintained in lockstep with `translation` so matching can skip
    /// the shard when it provably holds zero candidates.
    synopsis: ShardSynopsis,
}

impl ShardSlot {
    fn new(engine: BoxedEngine) -> Self {
        ShardSlot {
            engine,
            translation: ShardTranslation::new(),
            synopsis: ShardSynopsis::new(),
        }
    }
}

/// `S` inner engines composed into one [`FilterEngine`].
///
/// * `subscribe` places onto the least-loaded shard (round-robin
///   tie-break, so a churn-free stream places exactly like classic
///   round-robin); `unsubscribe` routes by directory lookup to the
///   owning shard.
/// * Matching runs every shard against the event and merges the
///   results: matched ids are translated to the global id space through
///   the directory's reverse maps, [`MatchStats`] and [`MemoryUsage`]
///   are summed component-wise (per-shard work adds up — e.g.
///   `fulfilled` counts each shard's own phase-1 output, since shards
///   intern predicates independently).
/// * [`ShardedEngine::migrate`], [`ShardedEngine::rebalance`] and
///   [`ShardedEngine::resize`] move live subscriptions between shards
///   without changing their global ids.
/// * With `S = 1` placement is trivial and behaviour is
///   indistinguishable from the inner engine.
pub struct ShardedEngine {
    directory: SubscriptionDirectory,
    shards: Vec<ShardSlot>,
    /// Stride router for the per-shard *predicate* spaces (predicates
    /// never migrate); rebuilt on resize.
    pred_router: PredicateRouter,
    /// How `subscribe` picks a shard; see [`PlacementPolicy`].
    placement: PlacementPolicy,
}

impl ShardedEngine {
    /// `shards` fresh engines of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(kind: EngineKind, shards: usize) -> Self {
        Self::from_engines((0..shards).map(|_| kind.build()).collect())
    }

    /// Like [`ShardedEngine::new`], but retired global ids are reissued
    /// (LIFO) instead of growing the directory forever: under unbounded
    /// churn the id table stays bounded by the high-water live count.
    /// The trade-offs: ids no longer align with a flat engine's
    /// arrival-order ids, and a caller holding a stale id can collide
    /// with its new owner — so this stays an explicit engine-level
    /// opt-in (the broker, whose subscription handles unsubscribe on
    /// drop, always uses arrival-order ids).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_recycled_ids(kind: EngineKind, shards: usize) -> Self {
        let mut engine = Self::new(kind, shards);
        engine.directory = SubscriptionDirectory::with_recycled_ids(shards);
        engine
    }

    /// Composes pre-built (possibly custom or heterogeneous) engines;
    /// shard `i` is `engines[i]`. [`ShardedEngine::kind`] reports the
    /// first engine's kind.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn from_engines(engines: Vec<BoxedEngine>) -> Self {
        ShardedEngine {
            directory: SubscriptionDirectory::new(engines.len()),
            pred_router: PredicateRouter::new(engines.len()),
            shards: engines.into_iter().map(ShardSlot::new).collect(),
            placement: PlacementPolicy::default(),
        }
    }

    /// Sets the [`PlacementPolicy`] subsequent subscribes use. Existing
    /// placements are untouched; pair a switch to
    /// [`PlacementPolicy::ClusterByAttribute`] on a populated engine
    /// with [`ShardedEngine::rebalance`] if the old spread matters.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// The policy `subscribe` currently places with.
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.placement
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global-id directory (placements, loads, free list), for
    /// inspection.
    pub fn directory(&self) -> &SubscriptionDirectory {
        &self.directory
    }

    /// Shard `i`'s engine, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `i >= shard_count()`.
    pub fn shard(&self, i: usize) -> &(dyn FilterEngine + Send + Sync) {
        &*self.shards[i].engine
    }

    /// Shard `i`'s local → global translation map, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `i >= shard_count()`.
    pub fn translation(&self, i: usize) -> &ShardTranslation {
        &self.shards[i].translation
    }

    /// Shard `i`'s attribute synopsis, for inspection (the conservative
    /// candidate summary matching prunes against).
    ///
    /// # Panics
    ///
    /// Panics if `i >= shard_count()`.
    pub fn synopsis(&self, i: usize) -> &ShardSynopsis {
        &self.shards[i].synopsis
    }

    /// Live subscriptions per shard, as the shard engines report them.
    /// Always equal to the directory's
    /// [`loads`](SubscriptionDirectory::loads); kept as an independent
    /// probe of that invariant.
    pub fn shard_subscription_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.engine.subscription_count())
            .collect()
    }

    /// Moves up to `max_moves` subscriptions, one at a time, from the
    /// currently most-loaded to the currently least-loaded shard —
    /// live migration: the stored expression is re-subscribed on the
    /// target shard, the source entry is retired, and the global id is
    /// untouched, so existing subscribers notice nothing. Stops early
    /// once the loads are balanced (spread ≤ 1) or a move is refused
    /// (possible only with heterogeneous shards whose target engine
    /// rejects the expression — the subscription then simply stays
    /// put). Returns the number of subscriptions moved.
    pub fn migrate(&mut self, max_moves: usize) -> usize {
        let mut moved = 0;
        while moved < max_moves {
            let Some((from, to)) = self.directory.skew_pair() else {
                break;
            };
            if !self.migrate_one(from, to) {
                break;
            }
            moved += 1;
        }
        moved
    }

    /// Migrates until the per-shard loads are as even as they can be:
    /// afterwards `max(load) − min(load) ≤ 1` (unless a heterogeneous
    /// target shard refused a move). Returns the number of
    /// subscriptions moved.
    pub fn rebalance(&mut self) -> usize {
        self.migrate(usize::MAX)
    }

    /// Grows or shrinks to `new_shards` shards **incrementally**.
    /// Growing appends fresh engines of [`ShardedEngine::kind`] (new
    /// shards start empty; follow with [`ShardedEngine::rebalance`] to
    /// spread existing subscriptions onto them). Shrinking drains one
    /// dying shard at a time — each resident is live-migrated to the
    /// least-loaded surviving shard — then drops the empty engine, so
    /// no surviving shard is ever rebuilt and every global id survives.
    /// Returns the number of subscriptions migrated.
    ///
    /// # Panics
    ///
    /// Panics if `new_shards` is zero, or if a surviving shard refuses
    /// a drained subscription (possible only with heterogeneous
    /// shards).
    pub fn resize(&mut self, new_shards: usize) -> usize {
        assert!(new_shards > 0, "a sharded engine needs at least one shard");
        let old = self.shards.len();
        let mut moved = 0;
        if new_shards > old {
            let kind = self.kind();
            for _ in old..new_shards {
                self.shards.push(ShardSlot::new(kind.build()));
                self.directory.add_shard();
            }
        } else {
            for dying in (new_shards..old).rev() {
                while let Some((global, local)) = self.shards[dying].translation.last_resident() {
                    // `place_among` keeps the drain spreading over the
                    // survivors (least-loaded + tie-break cursor); the
                    // reservation is released immediately because
                    // `relocate` moves the load unit itself.
                    let to = self.directory.place_among(new_shards);
                    self.directory.cancel(to);
                    self.relocate(global, dying, local, to)
                        .expect("a surviving shard refused a drained subscription");
                    moved += 1;
                }
                self.shards.pop();
                self.directory.remove_last_shard();
            }
        }
        self.pred_router = PredicateRouter::new(new_shards);
        moved
    }

    /// One migration step from `from` to `to`; `false` when `from` has
    /// no residents or the target engine refuses the expression.
    fn migrate_one(&mut self, from: usize, to: usize) -> bool {
        let Some((global, local)) = self.shards[from].translation.last_resident() else {
            return false;
        };
        self.relocate(global, from, local, to).is_ok()
    }

    /// Moves one subscription: re-subscribe on `to`, retire on `from`,
    /// repoint the directory and the two shards' translation maps. The
    /// global id is untouched.
    fn relocate(
        &mut self,
        global: SubscriptionId,
        from: usize,
        local: SubscriptionId,
        to: usize,
    ) -> Result<(), SubscribeError> {
        let expr = Arc::clone(
            self.directory
                .expr_of(global)
                .expect("residents hold live directory entries"),
        );
        let new_local = self.shards[to].engine.subscribe(&expr)?;
        self.shards[from]
            .engine
            .unsubscribe(local)
            .expect("directory and shard engines are kept in sync");
        let relocated = self.directory.relocate(global, from, local, to, new_local);
        debug_assert!(relocated, "single-threaded relocation cannot race");
        let cleared = self.shards[from].translation.clear_if(local, global);
        debug_assert!(cleared, "translation and directory are kept in sync");
        self.shards[from].synopsis.remove(local);
        self.shards[to].translation.set(new_local, global);
        self.shards[to].synopsis.insert(new_local, &expr);
        Ok(())
    }

    /// [`FilterEngine::match_event_into`], with the per-shard matching
    /// fanned out across threads instead of walked sequentially — the
    /// intra-event parallel path for large engines, where per-publish
    /// latency otherwise grows linearly with the shard count.
    ///
    /// Shard 0 is matched inline on the calling thread (into the
    /// caller's `scratch`); every other shard runs on its own scoped
    /// thread with a warm scratch drawn from `scratches`. Results merge
    /// in **shard order**, so the matched ids in
    /// [`MatchScratch::matched`] and the summed [`MatchStats`] are
    /// bit-identical to the sequential [`FilterEngine::match_event_into`]
    /// walk no matter how the workers interleave. With one shard this
    /// *is* the sequential walk.
    ///
    /// Because the engine is a plain borrowed value, the fan-out uses
    /// [`std::thread::scope`] (one short-lived thread per remote shard
    /// per call). The broker's publish pipeline performs the same
    /// fan-out spawn-free on a persistent [`crate::WorkerPool`], which
    /// is the form hot paths should use; this method is the
    /// self-contained equivalent for standalone engines, tests and
    /// harnesses.
    // lint: hot-path — the standalone parallel matching walk; the
    // expects below keep translation↔engine desync loud rather than
    // silently diverging from the sequential walk.
    pub fn match_event_parallel(
        &self,
        event: &Event,
        scratches: &ScratchPool,
        scratch: &mut MatchScratch,
    ) -> MatchStats {
        if self.shards.len() == 1 {
            return self.match_event_into(event, scratch);
        }
        let mut remote: Vec<Option<(Option<PooledScratch<'_>>, MatchStats)>> =
            (1..self.shards.len()).map(|_| None).collect();
        let mut stats = MatchStats::default();
        std::thread::scope(|scope| {
            for (slot_shard, slot) in self.shards[1..].iter().zip(remote.iter_mut()) {
                scope.spawn(move || {
                    let engine = &slot_shard.engine;
                    // Same pruning decision as the sequential walk: a
                    // shard with provably zero candidates contributes an
                    // empty result without even leasing a scratch.
                    if !slot_shard.synopsis.admits(event) {
                        let pruned = MatchStats {
                            shards_pruned: 1,
                            ..MatchStats::default()
                        };
                        *slot = Some((None, pruned));
                        return;
                    }
                    let mut lease = scratches.checkout(engine);
                    let stats = engine.match_event_into(event, &mut lease);
                    // Translate to global ids in place through the
                    // shard's own map — the merge below then just
                    // concatenates, and no worker touches any shared
                    // routing state. On this single-owner path every
                    // matched local is live; the expect keeps a broken
                    // translation↔engine sync loud instead of silently
                    // diverging from the sequential walk.
                    lease.translate_matched(|local| {
                        Some(
                            slot_shard
                                .translation
                                .global_of(local)
                                // lint: allow(panic-policy, reason = "single-owner invariant: every matched local has a live translation entry")
                                .expect("matched locals hold live translation entries"),
                        )
                    });
                    *slot = Some((Some(lease), stats));
                });
            }
            // Shard 0 inline, into the caller's scratch (clearing any
            // stale matched ids when the synopsis prunes the shard).
            if self.shards[0].synopsis.admits(event) {
                stats = self.shards[0].engine.match_event_into(event, scratch);
            } else {
                scratch.matched.clear();
                stats.shards_pruned += 1;
            }
        });
        scratch.translate_matched(|local| {
            Some(
                self.shards[0]
                    .translation
                    .global_of(local)
                    // lint: allow(panic-policy, reason = "single-owner invariant: every matched local has a live translation entry")
                    .expect("matched locals hold live translation entries"),
            )
        });
        let mut matched = std::mem::take(&mut scratch.matched);
        for slot in &mut remote {
            // lint: allow(panic-policy, reason = "scope join guarantees every spawned worker filled its slot")
            let (lease, shard_stats) = slot.take().expect("scoped worker fills its slot");
            stats = stats + shard_stats;
            if let Some(lease) = lease {
                matched.extend_from_slice(lease.matched());
            }
        }
        scratch.matched = matched;
        stats
    }

    /// [`FilterEngine::match_batch`], with the per-shard batch matching
    /// fanned out across threads: each worker takes the **whole batch**
    /// for its shard — pruning it through the shard synopsis once per
    /// batch, then running the shard engine's batch kernel — and
    /// results merge per event in shard order, so the per-event matched
    /// sets and the summed [`MatchStats`] equal the sequential
    /// [`FilterEngine::match_batch`] walk. Shard 0 runs inline into the
    /// caller's `batch`; every other shard leases a warm
    /// [`BatchScratch`] from `scratches`. With one shard this *is* the
    /// sequential walk.
    pub fn match_batch_parallel(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        scratches: &BatchScratchPool,
        batch: &mut BatchScratch,
    ) -> MatchStats {
        if self.shards.len() == 1 {
            return self.match_batch(events, skip, batch);
        }
        let mut remote: Vec<Option<(Option<PooledBatchScratch<'_>>, MatchStats)>> =
            (1..self.shards.len()).map(|_| None).collect();
        let mut stats = MatchStats::default();
        std::thread::scope(|scope| {
            for (slot_shard, slot) in self.shards[1..].iter().zip(remote.iter_mut()) {
                scope.spawn(move || {
                    let engine = &slot_shard.engine;
                    let mut lease = scratches.checkout(engine);
                    let mut shard_skip = std::mem::take(&mut lease.shard_skip);
                    let pruned = slot_shard
                        .synopsis
                        .admits_batch(events, skip, &mut shard_skip);
                    let mut shard_stats = MatchStats {
                        shards_pruned: pruned,
                        ..MatchStats::default()
                    };
                    if shard_skip.iter().all(|&sk| sk) {
                        // Every event pruned: the lease goes straight
                        // back to the pool without any matching work.
                        lease.shard_skip = shard_skip;
                        *slot = Some((None, shard_stats));
                        return;
                    }
                    shard_stats = shard_stats + engine.match_batch(events, &shard_skip, &mut lease);
                    lease.shard_skip = shard_skip;
                    // Translate to global ids in place through the
                    // shard's own map, as on the per-event parallel
                    // path.
                    for m in lease.matched.iter_mut().take(events.len()) {
                        for id in m.iter_mut() {
                            *id = slot_shard
                                .translation
                                .global_of(*id)
                                // lint: allow(panic-policy, reason = "single-owner invariant: every matched local has a live translation entry")
                                .expect("matched locals hold live translation entries");
                        }
                    }
                    *slot = Some((Some(lease), shard_stats));
                });
            }
            // Shard 0 inline, into the caller's batch scratch.
            let shard0 = &self.shards[0];
            let mut shard_skip = std::mem::take(&mut batch.shard_skip);
            stats.shards_pruned += shard0.synopsis.admits_batch(events, skip, &mut shard_skip);
            if shard_skip.iter().all(|&sk| sk) {
                // Clear any stale per-event output when the whole batch
                // is pruned for shard 0.
                batch.begin_batch(events.len());
            } else {
                stats = stats + shard0.engine.match_batch(events, &shard_skip, batch);
                for m in batch.matched.iter_mut().take(events.len()) {
                    for id in m.iter_mut() {
                        *id = shard0
                            .translation
                            .global_of(*id)
                            // lint: allow(panic-policy, reason = "single-owner invariant: every matched local has a live translation entry")
                            .expect("matched locals hold live translation entries");
                    }
                }
            }
            batch.shard_skip = shard_skip;
        });
        for slot in &mut remote {
            // lint: allow(panic-policy, reason = "scope join guarantees every spawned worker filled its slot")
            let (lease, shard_stats) = slot.take().expect("scoped worker fills its slot");
            stats = stats + shard_stats;
            if let Some(lease) = lease {
                for (e, m) in batch.matched.iter_mut().enumerate().take(events.len()) {
                    m.extend_from_slice(&lease.matched[e]);
                }
            }
        }
        stats
    }

    /// Translation of one shard's matched local id through that
    /// shard's own map; matched locals are always live on this
    /// single-owner engine.
    fn global_of(&self, shard: usize, local: SubscriptionId) -> SubscriptionId {
        self.shards[shard]
            .translation
            .global_of(local)
            // lint: allow(panic-policy, reason = "single-owner invariant: every matched local has a live translation entry")
            .expect("matched locals hold live translation entries")
    }
    // lint: end-hot-path
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("kind", &self.kind())
            .field("shards", &self.shards.len())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

impl FilterEngine for ShardedEngine {
    fn kind(&self) -> EngineKind {
        self.shards[0].engine.kind()
    }

    fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        let shard = match self.placement {
            PlacementPolicy::LeastLoaded => self.directory.place(),
            PlacementPolicy::ClusterByAttribute => match dominant_eq_attr(expr) {
                Some(attr) => self.directory.place_clustered(attribute_hash(attr)),
                None => self.directory.place(),
            },
        };
        match self.shards[shard].engine.subscribe(expr) {
            Ok(local) => {
                let global = self.directory.commit(shard, local, Arc::new(expr.clone()));
                self.shards[shard].translation.set(local, global);
                self.shards[shard].synopsis.insert(local, expr);
                Ok(global)
            }
            Err(e) => {
                self.directory.cancel(shard);
                Err(e)
            }
        }
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
        let Some((shard, local)) = self.directory.placement_of(id) else {
            // Errors surface in the caller's (global) id space.
            return Err(UnsubscribeError::UnknownSubscription(id));
        };
        self.shards[shard]
            .engine
            .unsubscribe(local)
            .expect("directory and shard engines are kept in sync");
        self.directory.retire(id);
        let cleared = self.shards[shard].translation.clear_if(local, id);
        debug_assert!(cleared, "translation and directory are kept in sync");
        self.shards[shard].synopsis.remove(local);
        Ok(())
    }

    fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
        out.begin(self.predicate_universe());
        // The standalone split needs a temporary per-shard set (there
        // is no scratch in phase 1's signature); the hot path —
        // `match_event_into` — never materialises global predicate ids.
        let mut local = FulfilledSet::new();
        for (s, shard) in self.shards.iter().enumerate() {
            shard.engine.phase1(event, &mut local);
            for &id in local.ids() {
                out.insert(self.pred_router.global_pred(s, id));
            }
        }
    }

    fn phase2(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        let mut local = std::mem::take(&mut scratch.shard_fulfilled);
        let mut shard_out = std::mem::take(&mut scratch.shard_matched);
        let mut stats = MatchStats::default();
        for (s, shard) in self.shards.iter().enumerate() {
            // Project the global fulfilled set onto this shard's
            // predicate space.
            let universe = shard.engine.predicate_universe();
            local.begin(universe);
            for &g in fulfilled.ids() {
                let (owner, pred) = self.pred_router.split_pred(g);
                if owner == s && pred.index() < universe {
                    local.insert(pred);
                }
            }
            stats = stats + shard.engine.phase2(&local, scratch, &mut shard_out);
            matched.extend(shard_out.iter().map(|&l| self.global_of(s, l)));
        }
        scratch.shard_fulfilled = local;
        scratch.shard_matched = shard_out;
        stats
    }

    // lint: hot-path — the sequential matching walk, including the
    // synopsis prune decision: per-shard state only, no global locks.
    fn match_event_into(&self, event: &Event, scratch: &mut MatchScratch) -> MatchStats {
        // Per shard: phase 1 straight into phase 2, all in the shard's
        // own (local) id spaces — no translation of predicate ids, no
        // allocation in steady state. Only matched ids are mapped to
        // the global space (one lookup in the shard's own translation
        // map each), into the accumulating `matched` buffer.
        let mut fulfilled = std::mem::take(&mut scratch.fulfilled);
        let mut matched = std::mem::take(&mut scratch.matched);
        let mut shard_out = std::mem::take(&mut scratch.shard_matched);
        matched.clear();
        let mut stats = MatchStats::default();
        for (s, shard) in self.shards.iter().enumerate() {
            // Content-aware pruning: a shard whose synopsis proves zero
            // candidates is skipped before either phase runs. The
            // synopsis is conservative, so the matched set is identical
            // to the unpruned walk.
            if !shard.synopsis.admits(event) {
                stats.shards_pruned += 1;
                continue;
            }
            shard.engine.phase1(event, &mut fulfilled);
            stats = stats + shard.engine.phase2(&fulfilled, scratch, &mut shard_out);
            matched.extend(shard_out.iter().map(|&l| self.global_of(s, l)));
        }
        scratch.fulfilled = fulfilled;
        scratch.matched = matched;
        scratch.shard_matched = shard_out;
        stats
    }

    fn match_batch(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        batch: &mut BatchScratch,
    ) -> MatchStats {
        // Per shard: prune the whole batch through the synopsis once,
        // then hand the surviving events to the shard engine's batch
        // kernel in one call — the association tables are walked once
        // per (shard, chunk) instead of once per (shard, event). Local
        // matched ids are translated into the per-event global
        // accumulator as each shard completes, so `batch.matched` ends
        // up identical (as per-event sets) to the per-event walk.
        batch.begin_batch(events.len());
        let mut acc = std::mem::take(&mut batch.shard_matched);
        if acc.len() < events.len() {
            acc.resize_with(events.len(), Vec::new);
        }
        for m in acc.iter_mut().take(events.len()) {
            m.clear();
        }
        let mut shard_skip = std::mem::take(&mut batch.shard_skip);
        let mut stats = MatchStats::default();
        for (s, shard) in self.shards.iter().enumerate() {
            stats.shards_pruned += shard.synopsis.admits_batch(events, skip, &mut shard_skip);
            if shard_skip.iter().all(|&sk| sk) {
                continue;
            }
            stats = stats + shard.engine.match_batch(events, &shard_skip, batch);
            for (e, out) in acc.iter_mut().enumerate().take(events.len()) {
                out.extend(batch.matched[e].iter().map(|&l| self.global_of(s, l)));
            }
        }
        std::mem::swap(&mut batch.matched, &mut acc);
        batch.shard_matched = acc;
        batch.shard_skip = shard_skip;
        stats
    }
    // lint: end-hot-path

    fn subscription_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.subscription_count())
            .sum()
    }

    fn subscription_id_bound(&self) -> usize {
        // Scratch buffers serve two id spaces here: global ids (the
        // directory's issued slot bound) and each shard's local ids
        // (the inner phase-2 stamp space, which migration churn can
        // grow past the global bound). Cover both.
        self.shards
            .iter()
            .map(|s| s.engine.subscription_id_bound())
            .max()
            .unwrap_or(0)
            .max(self.directory.id_bound())
    }

    fn registered_units(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.registered_units())
            .sum()
    }

    fn unit_slot_bound(&self) -> usize {
        // Shards are matched sequentially against one scratch, and each
        // shard indexes the hit vector in its *own* slot space — the
        // per-shard maximum is exactly what pre-sizing needs.
        self.shards
            .iter()
            .map(|s| s.engine.unit_slot_bound())
            .max()
            .unwrap_or(0)
    }

    fn predicate_count(&self) -> usize {
        // Shards intern independently: a predicate shared by
        // subscriptions on different shards is counted once per shard.
        self.shards.iter().map(|s| s.engine.predicate_count()).sum()
    }

    fn predicate_universe(&self) -> usize {
        self.pred_router
            .global_bound(self.shards.iter().map(|s| s.engine.predicate_universe()))
    }

    fn memory_usage(&self) -> MemoryUsage {
        // The sharding layer's own overhead — the write-side directory
        // (slot table + stored expressions for migration) plus every
        // shard's read-side translation map and attribute synopsis — is
        // reported as unsubscription/rebalancing support.
        let routing = MemoryUsage {
            unsub_support: self.directory.heap_bytes()
                + self
                    .shards
                    .iter()
                    .map(|s| s.translation.heap_bytes() + s.synopsis.heap_bytes())
                    .sum::<usize>(),
            ..MemoryUsage::default()
        };
        self.shards
            .iter()
            .map(|s| s.engine.memory_usage())
            .fold(routing, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    fn exprs(n: usize) -> Vec<Expr> {
        (0..n)
            .map(|i| {
                Expr::parse(&format!(
                    "(group = {} or boost = 1) and tick >= {}",
                    i % 5,
                    i
                ))
                .unwrap()
            })
            .collect()
    }

    /// Sorted matched ids of `engine` for `event`.
    fn matched(engine: &ShardedEngine, event: &Event) -> Vec<SubscriptionId> {
        let mut scratch = MatchScratch::new();
        let mut ids = engine.match_event(event, &mut scratch).matched;
        ids.sort_unstable();
        ids
    }

    #[test]
    fn global_ids_follow_arrival_order() {
        for shards in [1usize, 3, 8] {
            let mut engine = ShardedEngine::new(EngineKind::NonCanonical, shards);
            for n in 0..20 {
                let id = engine.subscribe(&exprs(20)[n]).unwrap();
                assert_eq!(id.index(), n, "shards={shards}");
            }
            assert_eq!(engine.subscription_count(), 20);
        }
    }

    #[test]
    fn churn_free_placement_matches_round_robin() {
        let mut engine = ShardedEngine::new(EngineKind::Counting, 4);
        for e in exprs(10) {
            engine.subscribe(&e).unwrap();
        }
        assert_eq!(engine.shard_subscription_counts(), vec![3, 3, 2, 2]);
        assert_eq!(engine.directory().loads(), &[3, 3, 2, 2]);
    }

    #[test]
    fn drained_shard_is_refilled_first() {
        // The churn-skew regression: the old blind round-robin cursor
        // kept striding past a shard emptied by unsubscribes; the
        // least-loaded placement must refill it.
        let mut engine = ShardedEngine::new(EngineKind::NonCanonical, 4);
        let ids: Vec<_> = exprs(12)
            .iter()
            .map(|e| engine.subscribe(e).unwrap())
            .collect();
        // Shard 2 holds arrivals 2, 6, 10; drain it.
        for &i in &[2usize, 6, 10] {
            engine.unsubscribe(ids[i]).unwrap();
        }
        assert_eq!(engine.shard_subscription_counts(), vec![3, 3, 0, 3]);
        for e in &exprs(15)[12..] {
            let id = engine.subscribe(e).unwrap();
            let (shard, _) = engine.directory().placement_of(id).unwrap();
            assert_eq!(shard, 2, "new subscriptions refill the drained shard");
        }
        assert_eq!(engine.shard_subscription_counts(), vec![3, 3, 3, 3]);
        assert!(engine.directory().is_balanced());
    }

    #[test]
    fn matches_agree_with_unsharded_engine() {
        for kind in EngineKind::ALL {
            for shards in [1usize, 3] {
                let mut flat = Matcher::new(kind.build());
                let mut sharded = Matcher::new(ShardedEngine::new(kind, shards));
                for e in exprs(16) {
                    let a = flat.subscribe(&e).unwrap();
                    let b = sharded.subscribe(&e).unwrap();
                    assert_eq!(a, b);
                }
                for t in 0..40 {
                    let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                    let mut a = flat.match_event(&event).matched;
                    let mut b = sharded.match_event(&event).matched;
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "kind={kind} shards={shards} t={t}");
                }
            }
        }
    }

    #[test]
    fn batch_agrees_with_per_event_walk_and_parallel_fanout() {
        // Sequential match_batch, the parallel batch fan-out, and the
        // per-event walk must agree on ids (as per-event sets) and on
        // summed stats — including shards_pruned, which the batch paths
        // account per (event, shard) through the synopsis.
        let scratches = BatchScratchPool::new(8);
        for kind in EngineKind::ALL {
            for shards in [1usize, 3, 8] {
                let mut engine = ShardedEngine::new(kind, shards)
                    .with_placement(PlacementPolicy::ClusterByAttribute);
                for i in 0..48 {
                    let e = Expr::parse(&format!("g{} = 1 and seq >= {}", i % 8, i / 8)).unwrap();
                    engine.subscribe(&e).unwrap();
                }
                let events: Vec<Arc<Event>> = (0..150)
                    .map(|t| {
                        Arc::new(Event::from_pairs([
                            (format!("g{}", t % 8), 1i64),
                            ("seq".to_string(), (t % 7) as i64),
                        ]))
                    })
                    .collect();
                let mut scratch = MatchScratch::new();
                let mut scalar_total = MatchStats::default();
                let mut want: Vec<Vec<SubscriptionId>> = Vec::new();
                for event in &events {
                    scalar_total = scalar_total + engine.match_event_into(event, &mut scratch);
                    let mut ids = scratch.matched().to_vec();
                    ids.sort_unstable();
                    want.push(ids);
                }

                let mut batch = BatchScratch::new();
                for parallel in [false, true] {
                    let stats = if parallel {
                        engine.match_batch_parallel(&events, &[], &scratches, &mut batch)
                    } else {
                        engine.match_batch(&events, &[], &mut batch)
                    };
                    for (e, want_ids) in want.iter().enumerate() {
                        let mut got = batch.matched(e).to_vec();
                        got.sort_unstable();
                        assert_eq!(
                            &got, want_ids,
                            "kind={kind} shards={shards} parallel={parallel} event {e}"
                        );
                    }
                    let mut stats = stats;
                    stats.batch_events = 0;
                    stats.batch_passes = 0;
                    assert_eq!(
                        stats, scalar_total,
                        "kind={kind} shards={shards} parallel={parallel}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_skip_mask_composes_with_shard_pruning() {
        let mut engine = ShardedEngine::new(EngineKind::Counting, 4)
            .with_placement(PlacementPolicy::ClusterByAttribute);
        for i in 0..16 {
            let e = Expr::parse(&format!("g{} = 1", i % 4)).unwrap();
            engine.subscribe(&e).unwrap();
        }
        let events: Vec<Arc<Event>> = (0..8)
            .map(|t| Arc::new(Event::from_pairs([(format!("g{}", t % 4), 1i64)])))
            .collect();
        let skip = [false, true, false, true, false, true, false, true];
        let mut batch = BatchScratch::new();
        let stats = engine.match_batch(&events, &skip, &mut batch);
        assert_eq!(stats.batch_events, 4);
        for (e, &skipped) in skip.iter().enumerate() {
            assert_eq!(batch.matched(e).is_empty(), skipped, "event {e}");
        }
        // Each live event candidates one shard; the other 3 are pruned
        // per event (4 live events × 3 shards), and caller-skipped
        // events never count as pruned.
        assert_eq!(stats.shards_pruned, 12);
    }

    #[test]
    fn unsubscribe_routes_to_owning_shard() {
        let mut engine = ShardedEngine::new(EngineKind::NonCanonical, 3);
        let ids: Vec<_> = exprs(9)
            .iter()
            .map(|e| engine.subscribe(e).unwrap())
            .collect();
        engine.unsubscribe(ids[4]).unwrap();
        assert_eq!(engine.subscription_count(), 8);
        assert_eq!(engine.shard_subscription_counts(), vec![3, 2, 3]);
        // Stale and never-issued global ids fail in the global space.
        assert_eq!(
            engine.unsubscribe(ids[4]),
            Err(UnsubscribeError::UnknownSubscription(ids[4]))
        );
        let bogus = SubscriptionId::from_index(1000);
        assert_eq!(
            engine.unsubscribe(bogus),
            Err(UnsubscribeError::UnknownSubscription(bogus))
        );
        // The event for a removed subscription no longer matches it.
        let mut m = Matcher::new(engine);
        let matched = m.match_event(&ev(&[("group", 4), ("tick", 100)])).matched;
        assert!(!matched.contains(&ids[4]));
    }

    #[test]
    fn migration_keeps_ids_and_matches_stable() {
        for kind in EngineKind::ALL {
            let mut engine = ShardedEngine::new(kind, 3);
            let ids: Vec<_> = exprs(12)
                .iter()
                .map(|e| engine.subscribe(e).unwrap())
                .collect();
            // Skew the loads: drain shard 1 (arrivals 1, 4, 7, 10).
            for &i in &[1usize, 4, 7, 10] {
                engine.unsubscribe(ids[i]).unwrap();
            }
            assert_eq!(engine.directory().loads(), &[4, 0, 4]);
            let event = ev(&[("boost", 1), ("tick", 100)]);
            let before = matched(&engine, &event);
            assert_eq!(before.len(), 8, "every live subscription matches");

            // One bounded step ([4,0,4] → [3,1,4]), then the rest.
            assert_eq!(engine.migrate(1), 1);
            assert_eq!(engine.directory().imbalance(), 3, "one move narrows it");
            let moved = engine.rebalance();
            assert!(moved >= 1, "kind={kind}");
            assert!(engine.directory().is_balanced(), "kind={kind}");
            assert_eq!(
                engine.directory().loads().iter().sum::<usize>(),
                8,
                "no subscription lost"
            );
            assert_eq!(
                engine.shard_subscription_counts(),
                engine.directory().loads(),
                "engines and directory agree"
            );

            // Same global ids match, before and after migration.
            assert_eq!(matched(&engine, &event), before, "kind={kind}");
            assert_eq!(engine.rebalance(), 0, "already balanced");
        }
    }

    #[test]
    fn resize_grows_and_shrinks_incrementally() {
        for kind in EngineKind::ALL {
            let mut engine = ShardedEngine::new(kind, 3);
            for e in exprs(12) {
                engine.subscribe(&e).unwrap();
            }
            let event = ev(&[("boost", 1), ("tick", 100)]);
            let before = matched(&engine, &event);
            assert_eq!(before.len(), 12);

            // Grow: new shards start empty; rebalance spreads onto them.
            assert_eq!(engine.resize(5), 0);
            assert_eq!(engine.shard_count(), 5);
            assert_eq!(engine.directory().loads(), &[4, 4, 4, 0, 0]);
            assert_eq!(matched(&engine, &event), before, "grow, kind={kind}");
            engine.rebalance();
            assert!(engine.directory().is_balanced());
            assert_eq!(matched(&engine, &event), before, "spread, kind={kind}");

            // Shrink below the original count: dying shards drain onto
            // the survivors one at a time.
            let moved = engine.resize(2);
            assert!(moved >= 1);
            assert_eq!(engine.shard_count(), 2);
            assert_eq!(engine.directory().loads().iter().sum::<usize>(), 12);
            assert_eq!(matched(&engine, &event), before, "shrink, kind={kind}");

            // All the way to one shard — flat again.
            engine.resize(1);
            assert_eq!(engine.shard_count(), 1);
            assert_eq!(matched(&engine, &event), before, "flat, kind={kind}");

            // Ids survived every move: unsubscribe still routes.
            engine.unsubscribe(before[0]).unwrap();
            assert_eq!(engine.subscription_count(), 11);
        }
    }

    #[test]
    fn standalone_phases_agree_with_match_event() {
        for kind in EngineKind::ALL {
            let mut engine = ShardedEngine::new(kind, 3);
            for e in exprs(12) {
                engine.subscribe(&e).unwrap();
            }
            let mut scratch = MatchScratch::new();
            for t in 0..20 {
                let event = ev(&[("group", t % 5), ("tick", t * 3)]);
                let mut expect = engine.match_event(&event, &mut scratch).matched;

                // Global-id phase 1 output fed through global-id phase 2
                // must reach the same answer.
                let mut fulfilled = FulfilledSet::new();
                engine.phase1(&event, &mut fulfilled);
                let mut got = Vec::new();
                let stats = engine.phase2(&fulfilled, &mut scratch, &mut got);

                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(expect, got, "kind={kind} t={t}");
                assert_eq!(stats.matched, got.len());
                assert_eq!(stats.fulfilled, fulfilled.len());
            }
        }
    }

    #[test]
    fn merged_accounting_sums_over_shards() {
        let mut engine = ShardedEngine::new(EngineKind::Counting, 4);
        for e in exprs(12) {
            engine.subscribe(&e).unwrap();
        }
        let per_shard: Vec<_> = (0..4).map(|i| engine.shard(i)).collect();
        assert_eq!(
            engine.registered_units(),
            per_shard
                .iter()
                .map(|s| s.registered_units())
                .sum::<usize>()
        );
        assert_eq!(
            engine.predicate_count(),
            per_shard.iter().map(|s| s.predicate_count()).sum::<usize>()
        );
        let translation_bytes: usize = (0..4).map(|i| engine.translation(i).heap_bytes()).sum();
        let synopsis_bytes: usize = (0..4).map(|i| engine.synopsis(i).heap_bytes()).sum();
        assert_eq!(
            engine.memory_usage().total(),
            per_shard
                .iter()
                .map(|s| s.memory_usage().total())
                .sum::<usize>()
                + engine.directory().heap_bytes()
                + translation_bytes
                + synopsis_bytes,
            "engine totals plus the directory, translation maps, and synopses"
        );
        assert!(engine.directory().heap_bytes() > 0);
        assert!(
            translation_bytes > 0,
            "per-shard reverse maps are charged, not free"
        );
        assert!(
            synopsis_bytes > 0,
            "attribute synopses are charged, not free"
        );
        assert!(engine.subscription_id_bound() >= 12);
        assert!(engine.predicate_universe() > 0);
        assert!(engine.unit_slot_bound() > 0);
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("shards: 4"));
    }

    #[test]
    fn parallel_matching_is_identical_to_sequential() {
        let scratches = ScratchPool::new(8);
        for kind in EngineKind::ALL {
            for shards in [1usize, 3, 8] {
                let mut engine = ShardedEngine::new(kind, shards);
                let ids: Vec<_> = exprs(24)
                    .iter()
                    .map(|e| engine.subscribe(e).unwrap())
                    .collect();
                // Skew shard 0, then rebalance, so the parallel walk
                // also exercises post-migration reverse maps.
                engine.unsubscribe(ids[0]).unwrap();
                engine.unsubscribe(ids[shards]).unwrap();
                engine.rebalance();
                let mut seq = MatchScratch::new();
                let mut par = MatchScratch::new();
                for t in 0..30 {
                    let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                    let seq_stats = engine.match_event_into(&event, &mut seq);
                    let par_stats = engine.match_event_parallel(&event, &scratches, &mut par);
                    // Bit-identical: same ids in the same order, and
                    // the same reconciled stats.
                    assert_eq!(
                        seq.matched(),
                        par.matched(),
                        "kind={kind} shards={shards} t={t}"
                    );
                    assert_eq!(seq_stats, par_stats, "kind={kind} shards={shards} t={t}");
                }
            }
        }
    }

    #[test]
    fn pruning_skips_zero_candidate_shards_and_preserves_matches() {
        // Clustered placement on a partitionable workload: every
        // subscription's dominant equality attribute names its group, so
        // each group lands on one shard and an event carrying a single
        // group attribute can candidate at most one shard (plus any
        // always-candidate shards — none here).
        let scratches = ScratchPool::new(8);
        for kind in EngineKind::ALL {
            let mut flat = Matcher::new(kind.build());
            let mut engine =
                ShardedEngine::new(kind, 8).with_placement(PlacementPolicy::ClusterByAttribute);
            assert_eq!(
                engine.placement_policy(),
                PlacementPolicy::ClusterByAttribute
            );
            for i in 0..64 {
                let e = Expr::parse(&format!("g{} = 1 and seq >= {}", i % 8, i / 8)).unwrap();
                let a = flat.subscribe(&e).unwrap();
                let b = engine.subscribe(&e).unwrap();
                assert_eq!(a, b, "arrival-order ids stay aligned");
            }
            let mut seq = MatchScratch::new();
            let mut par = MatchScratch::new();
            let mut pruned_total = 0usize;
            for g in 0..8i64 {
                let event = Event::from_pairs([(format!("g{g}"), 1i64), ("seq".to_string(), 3i64)]);
                let flat_ids = {
                    let mut ids = flat.match_event(&event).matched;
                    ids.sort_unstable();
                    ids
                };
                let seq_stats = engine.match_event_into(&event, &mut seq);
                let par_stats = engine.match_event_parallel(&event, &scratches, &mut par);
                assert_eq!(seq_stats, par_stats, "kind={kind} g={g}");
                let mut got = seq.matched().to_vec();
                got.sort_unstable();
                assert_eq!(got, flat_ids, "pruning changed the answer, kind={kind}");
                pruned_total += seq_stats.shards_pruned;
                assert!(
                    seq_stats.shards_pruned >= 7,
                    "clustering confines g{g} to one shard, kind={kind}: \
                     pruned only {}",
                    seq_stats.shards_pruned
                );
            }
            assert!(pruned_total > 0);
            // A flat engine never reports pruning.
            assert_eq!(
                flat.match_event(&ev(&[("g0", 1), ("seq", 3)]))
                    .stats
                    .shards_pruned,
                0
            );
        }
    }

    #[test]
    fn synopsis_tracks_churn_migration_and_resize() {
        let mut engine = ShardedEngine::new(EngineKind::NonCanonical, 3)
            .with_placement(PlacementPolicy::ClusterByAttribute);
        let exprs: Vec<Expr> = (0..18)
            .map(|i| Expr::parse(&format!("topic = {} and n >= {}", i % 6, i)).unwrap())
            .collect();
        let ids: Vec<_> = exprs.iter().map(|e| engine.subscribe(e).unwrap()).collect();
        // Churn, then force migrations and a resize ladder.
        for &i in &[1usize, 4, 9, 16] {
            engine.unsubscribe(ids[i]).unwrap();
        }
        engine.rebalance();
        engine.resize(5);
        engine.resize(2);
        engine.resize(3);
        engine.rebalance();

        // Every resident must still be covered by its shard's synopsis:
        // matching an event tailored to each surviving subscription
        // still finds it, with pruning active on every walk.
        let mut scratch = MatchScratch::new();
        for (i, (id, expr)) in ids.iter().zip(&exprs).enumerate() {
            if [1usize, 4, 9, 16].contains(&i) {
                continue;
            }
            let event = ev(&[("topic", (i % 6) as i64), ("n", i as i64)]);
            let result = engine.match_event(&event, &mut scratch);
            assert!(
                result.matched.contains(id),
                "survivor {i} lost to over-pruning: {expr}"
            );
        }
        // And the synopsis live counts reconcile with the directory.
        let live: usize = (0..engine.shard_count())
            .map(|s| engine.synopsis(s).live())
            .sum();
        assert_eq!(live, engine.subscription_count());
    }

    #[test]
    fn disjunctive_subscriptions_keep_every_shard_candidate() {
        // Top-level `or` defeats per-attribute summarisation; the
        // synopsis must fall back to always-candidate rather than
        // guess — conservativeness over pruning power.
        let mut engine = ShardedEngine::new(EngineKind::NonCanonical, 4);
        for i in 0..8 {
            engine
                .subscribe(&Expr::parse(&format!("a = {i} or b = {i}")).unwrap())
                .unwrap();
        }
        let mut scratch = MatchScratch::new();
        let stats = engine.match_event(&ev(&[("zzz", 99)]), &mut scratch).stats;
        assert_eq!(
            stats.shards_pruned, 0,
            "or-rooted residents pin their shard"
        );
    }

    #[test]
    fn empty_shards_are_always_pruned() {
        let mut engine = ShardedEngine::new(EngineKind::Counting, 4);
        engine.subscribe(&Expr::parse("k = 1").unwrap()).unwrap();
        let mut scratch = MatchScratch::new();
        let stats = engine.match_event(&ev(&[("k", 1)]), &mut scratch).stats;
        assert_eq!(stats.matched, 1);
        assert_eq!(stats.shards_pruned, 3, "three empty shards skipped");
    }

    #[test]
    fn parallel_matching_merges_in_shard_order_despite_stalls() {
        use std::sync::atomic::{AtomicBool, Ordering};

        // Shard 0 runs inline and is forced to finish *after* the
        // remote shards by a spin gate inside its phase 1; the merge
        // must still put shard 0's ids first.
        struct GatedEngine {
            inner: Box<dyn FilterEngine + Send + Sync>,
            wait_for: Option<Arc<AtomicBool>>,
            announce: Option<Arc<AtomicBool>>,
        }

        impl FilterEngine for GatedEngine {
            fn kind(&self) -> EngineKind {
                self.inner.kind()
            }
            fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
                self.inner.subscribe(expr)
            }
            fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
                self.inner.unsubscribe(id)
            }
            fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
                if let Some(gate) = &self.wait_for {
                    while !gate.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                }
                self.inner.phase1(event, out);
                if let Some(flag) = &self.announce {
                    flag.store(true, Ordering::Release);
                }
            }
            fn phase2(
                &self,
                fulfilled: &FulfilledSet,
                scratch: &mut MatchScratch,
                matched: &mut Vec<SubscriptionId>,
            ) -> MatchStats {
                self.inner.phase2(fulfilled, scratch, matched)
            }
            fn subscription_count(&self) -> usize {
                self.inner.subscription_count()
            }
            fn subscription_id_bound(&self) -> usize {
                self.inner.subscription_id_bound()
            }
            fn registered_units(&self) -> usize {
                self.inner.registered_units()
            }
            fn unit_slot_bound(&self) -> usize {
                self.inner.unit_slot_bound()
            }
            fn predicate_count(&self) -> usize {
                self.inner.predicate_count()
            }
            fn predicate_universe(&self) -> usize {
                self.inner.predicate_universe()
            }
            fn memory_usage(&self) -> MemoryUsage {
                self.inner.memory_usage()
            }
        }

        let remote_done = Arc::new(AtomicBool::new(false));
        let mut engine = ShardedEngine::from_engines(vec![
            Box::new(GatedEngine {
                inner: EngineKind::NonCanonical.build(),
                wait_for: Some(remote_done.clone()),
                announce: None,
            }),
            Box::new(GatedEngine {
                inner: EngineKind::NonCanonical.build(),
                wait_for: None,
                announce: Some(remote_done.clone()),
            }),
        ]);
        let a = engine.subscribe(&Expr::parse("hit = 1").unwrap()).unwrap(); // shard 0
        let b = engine.subscribe(&Expr::parse("hit = 1").unwrap()).unwrap(); // shard 1
        let scratches = ScratchPool::new(2);
        let mut scratch = MatchScratch::new();
        let stats = engine.match_event_parallel(&ev(&[("hit", 1)]), &scratches, &mut scratch);
        // Shard 1 provably finished first (it opened the gate shard 0
        // spins on), yet the merge is still shard 0 then shard 1.
        assert_eq!(scratch.matched(), &[a, b]);
        assert_eq!(stats.matched, 2);
    }

    #[test]
    fn recycled_ids_bound_the_directory_under_churn() {
        let mut engine = ShardedEngine::with_recycled_ids(EngineKind::NonCanonical, 2);
        let pool = exprs(4);
        // Sustained churn at 2 live: subscribe/unsubscribe forever.
        let a = engine.subscribe(&pool[0]).unwrap();
        let _b = engine.subscribe(&pool[1]).unwrap();
        for i in 0..50 {
            let dead = engine.subscribe(&pool[2 + (i % 2)]).unwrap();
            engine.unsubscribe(dead).unwrap();
        }
        // The id table never grew past the high-water live count (+1
        // for the churning slot); retired ids were reissued.
        assert_eq!(engine.directory().id_bound(), 3);
        assert_eq!(engine.directory().vacant(), 1);
        // Matching still translates through the recycled slots.
        let mut scratch = MatchScratch::new();
        let matched = engine
            .match_event(&ev(&[("group", 0), ("tick", 0)]), &mut scratch)
            .matched;
        assert!(matched.contains(&a));
    }

    #[test]
    fn usable_as_a_trait_object() {
        let mut engine: BoxedEngine = Box::new(ShardedEngine::new(EngineKind::CountingVariant, 2));
        let id = engine
            .subscribe(&Expr::parse("a = 1 or b = 2").unwrap())
            .unwrap();
        let mut scratch = MatchScratch::new();
        let result = engine.match_event(&ev(&[("b", 2)]), &mut scratch);
        assert_eq!(result.matched, vec![id]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedEngine::new(EngineKind::NonCanonical, 0);
    }
}
