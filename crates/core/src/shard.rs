//! A sharded composite engine: `S` inner engines behind one
//! [`FilterEngine`] face.
//!
//! Partitioning subscriptions across independent engine shards is the
//! standard route to write-scalable content-based matching: each
//! subscribe/unsubscribe touches exactly one shard, and each shard is
//! just a smaller engine, so per-event phase-2 cost per shard shrinks
//! with `S`. The composite engine here keeps the partitioning invisible
//! — it implements [`FilterEngine`] itself, so the sweep harness,
//! tests, and any single-threaded caller can use it transparently.
//!
//! Routing is the stride interleaving of [`ShardRouter`]: subscriptions
//! are placed round-robin, which makes the *n*-th accepted subscription
//! get global id *n*, exactly as an unsharded engine would assign (the
//! shard-equivalence property tests rely on this).
//!
//! **Locking is deliberately not here.** `ShardedEngine` is a plain
//! value with `&mut self` registration, like every other engine. The
//! broker achieves *concurrent* shard writes by holding its shards in
//! separate `RwLock`s and reusing the same [`ShardRouter`] arithmetic;
//! see `boolmatch-broker`.
//!
//! # Examples
//!
//! ```
//! use boolmatch_core::{EngineKind, FilterEngine, Matcher, ShardedEngine};
//! use boolmatch_expr::Expr;
//! use boolmatch_types::Event;
//!
//! let mut engine = Matcher::new(ShardedEngine::new(EngineKind::NonCanonical, 4));
//! let id = engine.subscribe(&Expr::parse("(a = 1 or b = 2) and c = 3")?)?;
//! let event = Event::builder().attr("b", 2_i64).attr("c", 3_i64).build();
//! assert_eq!(engine.match_event(&event).matched, vec![id]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use boolmatch_expr::Expr;
use boolmatch_types::Event;

use crate::engine::{EngineKind, FilterEngine, SubscribeError, UnsubscribeError};
use crate::pool::{PooledScratch, ScratchPool};
use crate::routing::ShardRouter;
use crate::{FulfilledSet, MatchScratch, MatchStats, MemoryUsage, SubscriptionId};

/// A boxed engine usable as a shard.
pub type BoxedEngine = Box<dyn FilterEngine + Send + Sync>;

/// `S` inner engines composed into one [`FilterEngine`].
///
/// * `subscribe` places round-robin onto one shard; `unsubscribe`
///   routes by id arithmetic to the owning shard.
/// * Matching runs every shard against the event and merges the
///   results: matched ids are translated to the global id space,
///   [`MatchStats`] and [`MemoryUsage`] are summed component-wise
///   (per-shard work adds up — e.g. `fulfilled` counts each shard's own
///   phase-1 output, since shards intern predicates independently).
/// * With `S = 1` the routing is the identity and behaviour is
///   indistinguishable from the inner engine.
pub struct ShardedEngine {
    router: ShardRouter,
    shards: Vec<BoxedEngine>,
    /// Next round-robin placement target; advanced only on a successful
    /// subscribe so rejected expressions do not skew placement (and the
    /// global-id ↔ arrival-order alignment survives rejections).
    next_shard: usize,
}

impl ShardedEngine {
    /// `shards` fresh engines of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(kind: EngineKind, shards: usize) -> Self {
        Self::from_engines((0..shards).map(|_| kind.build()).collect())
    }

    /// Composes pre-built (possibly custom or heterogeneous) engines;
    /// shard `i` is `engines[i]`. [`ShardedEngine::kind`] reports the
    /// first engine's kind.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn from_engines(engines: Vec<BoxedEngine>) -> Self {
        ShardedEngine {
            router: ShardRouter::new(engines.len()),
            shards: engines,
            next_shard: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The id router (stride arithmetic; cheap to copy).
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Shard `i`'s engine, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `i >= shard_count()`.
    pub fn shard(&self, i: usize) -> &(dyn FilterEngine + Send + Sync) {
        &*self.shards[i]
    }

    /// Live subscriptions per shard — round-robin keeps these within
    /// one of each other.
    pub fn shard_subscription_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|e| e.subscription_count()).collect()
    }

    /// [`FilterEngine::match_event_into`], with the per-shard matching
    /// fanned out across threads instead of walked sequentially — the
    /// intra-event parallel path for large engines, where per-publish
    /// latency otherwise grows linearly with the shard count.
    ///
    /// Shard 0 is matched inline on the calling thread (into the
    /// caller's `scratch`); every other shard runs on its own scoped
    /// thread with a warm scratch drawn from `scratches`. Results merge
    /// in **shard order**, so the matched ids in
    /// [`MatchScratch::matched`] and the summed [`MatchStats`] are
    /// bit-identical to the sequential [`FilterEngine::match_event_into`]
    /// walk no matter how the workers interleave. With one shard this
    /// *is* the sequential walk.
    ///
    /// Because the engine is a plain borrowed value, the fan-out uses
    /// [`std::thread::scope`] (one short-lived thread per remote shard
    /// per call). The broker's publish pipeline performs the same
    /// fan-out spawn-free on a persistent [`crate::WorkerPool`], which
    /// is the form hot paths should use; this method is the
    /// self-contained equivalent for standalone engines, tests and
    /// harnesses.
    pub fn match_event_parallel(
        &self,
        event: &Event,
        scratches: &ScratchPool,
        scratch: &mut MatchScratch,
    ) -> MatchStats {
        if self.shards.len() == 1 {
            return self.match_event_into(event, scratch);
        }
        let router = self.router;
        let mut remote: Vec<Option<(PooledScratch<'_>, MatchStats)>> =
            (1..self.shards.len()).map(|_| None).collect();
        let mut stats = MatchStats::default();
        std::thread::scope(|scope| {
            for (i, (engine, slot)) in self.shards[1..].iter().zip(remote.iter_mut()).enumerate() {
                let shard = i + 1;
                scope.spawn(move || {
                    let mut lease = scratches.checkout(engine);
                    let stats = engine.match_event_into(event, &mut lease);
                    // Translate to global ids in place — the merge below
                    // then just concatenates.
                    for id in lease.matched_mut().iter_mut() {
                        *id = router.global(shard, *id);
                    }
                    *slot = Some((lease, stats));
                });
            }
            // Shard 0 inline, into the caller's scratch.
            stats = self.shards[0].match_event_into(event, scratch);
        });
        let mut matched = std::mem::take(&mut scratch.matched);
        for id in matched.iter_mut() {
            *id = router.global(0, *id);
        }
        for slot in &mut remote {
            let (lease, shard_stats) = slot.take().expect("scoped worker fills its slot");
            stats = stats + shard_stats;
            matched.extend_from_slice(lease.matched());
        }
        scratch.matched = matched;
        stats
    }
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("kind", &self.kind())
            .field("shards", &self.shards.len())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

impl FilterEngine for ShardedEngine {
    fn kind(&self) -> EngineKind {
        self.shards[0].kind()
    }

    fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        let shard = self.next_shard;
        let local = self.shards[shard].subscribe(expr)?;
        self.next_shard = (shard + 1) % self.shards.len();
        Ok(self.router.global(shard, local))
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
        let (shard, local) = self.router.split(id);
        self.shards[shard].unsubscribe(local).map_err(|e| match e {
            // Errors surface in the caller's (global) id space.
            UnsubscribeError::UnknownSubscription(_) => UnsubscribeError::UnknownSubscription(id),
        })
    }

    fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
        out.begin(self.predicate_universe());
        // The standalone split needs a temporary per-shard set (there
        // is no scratch in phase 1's signature); the hot path —
        // `match_event_into` — never materialises global predicate ids.
        let mut local = FulfilledSet::new();
        for (s, engine) in self.shards.iter().enumerate() {
            engine.phase1(event, &mut local);
            for &id in local.ids() {
                out.insert(self.router.global_pred(s, id));
            }
        }
    }

    fn phase2(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        let mut local = std::mem::take(&mut scratch.shard_fulfilled);
        let mut shard_out = std::mem::take(&mut scratch.shard_matched);
        let mut stats = MatchStats::default();
        for (s, engine) in self.shards.iter().enumerate() {
            // Project the global fulfilled set onto this shard's
            // predicate space.
            let universe = engine.predicate_universe();
            local.begin(universe);
            for &g in fulfilled.ids() {
                let (shard, pred) = self.router.split_pred(g);
                if shard == s && pred.index() < universe {
                    local.insert(pred);
                }
            }
            stats = stats + engine.phase2(&local, scratch, &mut shard_out);
            matched.extend(shard_out.iter().map(|&l| self.router.global(s, l)));
        }
        scratch.shard_fulfilled = local;
        scratch.shard_matched = shard_out;
        stats
    }

    fn match_event_into(&self, event: &Event, scratch: &mut MatchScratch) -> MatchStats {
        // Per shard: phase 1 straight into phase 2, all in the shard's
        // own (local) id spaces — no translation of predicate ids, no
        // allocation in steady state. Only matched ids are mapped to
        // the global space, into the accumulating `matched` buffer.
        let mut fulfilled = std::mem::take(&mut scratch.fulfilled);
        let mut matched = std::mem::take(&mut scratch.matched);
        let mut shard_out = std::mem::take(&mut scratch.shard_matched);
        matched.clear();
        let mut stats = MatchStats::default();
        for (s, engine) in self.shards.iter().enumerate() {
            engine.phase1(event, &mut fulfilled);
            stats = stats + engine.phase2(&fulfilled, scratch, &mut shard_out);
            matched.extend(shard_out.iter().map(|&l| self.router.global(s, l)));
        }
        scratch.fulfilled = fulfilled;
        scratch.matched = matched;
        scratch.shard_matched = shard_out;
        stats
    }

    fn subscription_count(&self) -> usize {
        self.shards.iter().map(|e| e.subscription_count()).sum()
    }

    fn subscription_id_bound(&self) -> usize {
        self.router
            .global_bound(self.shards.iter().map(|e| e.subscription_id_bound()))
    }

    fn registered_units(&self) -> usize {
        self.shards.iter().map(|e| e.registered_units()).sum()
    }

    fn unit_slot_bound(&self) -> usize {
        // Shards are matched sequentially against one scratch, and each
        // shard indexes the hit vector in its *own* slot space — the
        // per-shard maximum is exactly what pre-sizing needs.
        self.shards
            .iter()
            .map(|e| e.unit_slot_bound())
            .max()
            .unwrap_or(0)
    }

    fn predicate_count(&self) -> usize {
        // Shards intern independently: a predicate shared by
        // subscriptions on different shards is counted once per shard.
        self.shards.iter().map(|e| e.predicate_count()).sum()
    }

    fn predicate_universe(&self) -> usize {
        self.router
            .global_bound(self.shards.iter().map(|e| e.predicate_universe()))
    }

    fn memory_usage(&self) -> MemoryUsage {
        self.shards
            .iter()
            .map(|e| e.memory_usage())
            .fold(MemoryUsage::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    fn exprs(n: usize) -> Vec<Expr> {
        (0..n)
            .map(|i| {
                Expr::parse(&format!(
                    "(group = {} or boost = 1) and tick >= {}",
                    i % 5,
                    i
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn global_ids_follow_arrival_order() {
        for shards in [1usize, 3, 8] {
            let mut engine = ShardedEngine::new(EngineKind::NonCanonical, shards);
            for n in 0..20 {
                let id = engine.subscribe(&exprs(20)[n]).unwrap();
                assert_eq!(id.index(), n, "shards={shards}");
            }
            assert_eq!(engine.subscription_count(), 20);
        }
    }

    #[test]
    fn round_robin_balances_shards() {
        let mut engine = ShardedEngine::new(EngineKind::Counting, 4);
        for e in exprs(10) {
            engine.subscribe(&e).unwrap();
        }
        assert_eq!(engine.shard_subscription_counts(), vec![3, 3, 2, 2]);
    }

    #[test]
    fn matches_agree_with_unsharded_engine() {
        for kind in EngineKind::ALL {
            for shards in [1usize, 3] {
                let mut flat = Matcher::new(kind.build());
                let mut sharded = Matcher::new(ShardedEngine::new(kind, shards));
                for e in exprs(16) {
                    let a = flat.subscribe(&e).unwrap();
                    let b = sharded.subscribe(&e).unwrap();
                    assert_eq!(a, b);
                }
                for t in 0..40 {
                    let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                    let mut a = flat.match_event(&event).matched;
                    let mut b = sharded.match_event(&event).matched;
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "kind={kind} shards={shards} t={t}");
                }
            }
        }
    }

    #[test]
    fn unsubscribe_routes_to_owning_shard() {
        let mut engine = ShardedEngine::new(EngineKind::NonCanonical, 3);
        let ids: Vec<_> = exprs(9)
            .iter()
            .map(|e| engine.subscribe(e).unwrap())
            .collect();
        engine.unsubscribe(ids[4]).unwrap();
        assert_eq!(engine.subscription_count(), 8);
        assert_eq!(engine.shard_subscription_counts(), vec![3, 2, 3]);
        // Stale and never-issued global ids fail in the global space.
        assert_eq!(
            engine.unsubscribe(ids[4]),
            Err(UnsubscribeError::UnknownSubscription(ids[4]))
        );
        let bogus = SubscriptionId::from_index(1000);
        assert_eq!(
            engine.unsubscribe(bogus),
            Err(UnsubscribeError::UnknownSubscription(bogus))
        );
        // The event for a removed subscription no longer matches it.
        let mut m = Matcher::new(engine);
        let matched = m.match_event(&ev(&[("group", 4), ("tick", 100)])).matched;
        assert!(!matched.contains(&ids[4]));
    }

    #[test]
    fn standalone_phases_agree_with_match_event() {
        for kind in EngineKind::ALL {
            let mut engine = ShardedEngine::new(kind, 3);
            for e in exprs(12) {
                engine.subscribe(&e).unwrap();
            }
            let mut scratch = MatchScratch::new();
            for t in 0..20 {
                let event = ev(&[("group", t % 5), ("tick", t * 3)]);
                let mut expect = engine.match_event(&event, &mut scratch).matched;

                // Global-id phase 1 output fed through global-id phase 2
                // must reach the same answer.
                let mut fulfilled = FulfilledSet::new();
                engine.phase1(&event, &mut fulfilled);
                let mut got = Vec::new();
                let stats = engine.phase2(&fulfilled, &mut scratch, &mut got);

                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(expect, got, "kind={kind} t={t}");
                assert_eq!(stats.matched, got.len());
                assert_eq!(stats.fulfilled, fulfilled.len());
            }
        }
    }

    #[test]
    fn merged_accounting_sums_over_shards() {
        let mut engine = ShardedEngine::new(EngineKind::Counting, 4);
        for e in exprs(12) {
            engine.subscribe(&e).unwrap();
        }
        let per_shard: Vec<_> = (0..4).map(|i| engine.shard(i)).collect();
        assert_eq!(
            engine.registered_units(),
            per_shard
                .iter()
                .map(|s| s.registered_units())
                .sum::<usize>()
        );
        assert_eq!(
            engine.predicate_count(),
            per_shard.iter().map(|s| s.predicate_count()).sum::<usize>()
        );
        assert_eq!(
            engine.memory_usage().total(),
            per_shard
                .iter()
                .map(|s| s.memory_usage().total())
                .sum::<usize>()
        );
        assert!(engine.subscription_id_bound() >= 12);
        assert!(engine.predicate_universe() > 0);
        assert!(engine.unit_slot_bound() > 0);
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("shards: 4"));
    }

    #[test]
    fn parallel_matching_is_identical_to_sequential() {
        let scratches = ScratchPool::new(8);
        for kind in EngineKind::ALL {
            for shards in [1usize, 3, 8] {
                let mut engine = ShardedEngine::new(kind, shards);
                for e in exprs(24) {
                    engine.subscribe(&e).unwrap();
                }
                let mut seq = MatchScratch::new();
                let mut par = MatchScratch::new();
                for t in 0..30 {
                    let event = ev(&[("group", t % 5), ("tick", t * 2)]);
                    let seq_stats = engine.match_event_into(&event, &mut seq);
                    let par_stats = engine.match_event_parallel(&event, &scratches, &mut par);
                    // Bit-identical: same ids in the same order, and
                    // the same reconciled stats.
                    assert_eq!(
                        seq.matched(),
                        par.matched(),
                        "kind={kind} shards={shards} t={t}"
                    );
                    assert_eq!(seq_stats, par_stats, "kind={kind} shards={shards} t={t}");
                }
            }
        }
    }

    #[test]
    fn parallel_matching_merges_in_shard_order_despite_stalls() {
        use std::sync::atomic::{AtomicBool, Ordering};

        // Shard 0 runs inline and is forced to finish *after* the
        // remote shards by a spin gate inside its phase 1; the merge
        // must still put shard 0's ids first.
        struct GatedEngine {
            inner: Box<dyn FilterEngine + Send + Sync>,
            wait_for: Option<Arc<AtomicBool>>,
            announce: Option<Arc<AtomicBool>>,
        }
        use std::sync::Arc;

        impl FilterEngine for GatedEngine {
            fn kind(&self) -> EngineKind {
                self.inner.kind()
            }
            fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
                self.inner.subscribe(expr)
            }
            fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
                self.inner.unsubscribe(id)
            }
            fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
                if let Some(gate) = &self.wait_for {
                    while !gate.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                }
                self.inner.phase1(event, out);
                if let Some(flag) = &self.announce {
                    flag.store(true, Ordering::Release);
                }
            }
            fn phase2(
                &self,
                fulfilled: &FulfilledSet,
                scratch: &mut MatchScratch,
                matched: &mut Vec<SubscriptionId>,
            ) -> MatchStats {
                self.inner.phase2(fulfilled, scratch, matched)
            }
            fn subscription_count(&self) -> usize {
                self.inner.subscription_count()
            }
            fn subscription_id_bound(&self) -> usize {
                self.inner.subscription_id_bound()
            }
            fn registered_units(&self) -> usize {
                self.inner.registered_units()
            }
            fn unit_slot_bound(&self) -> usize {
                self.inner.unit_slot_bound()
            }
            fn predicate_count(&self) -> usize {
                self.inner.predicate_count()
            }
            fn predicate_universe(&self) -> usize {
                self.inner.predicate_universe()
            }
            fn memory_usage(&self) -> MemoryUsage {
                self.inner.memory_usage()
            }
        }

        let remote_done = Arc::new(AtomicBool::new(false));
        let mut engine = ShardedEngine::from_engines(vec![
            Box::new(GatedEngine {
                inner: EngineKind::NonCanonical.build(),
                wait_for: Some(remote_done.clone()),
                announce: None,
            }),
            Box::new(GatedEngine {
                inner: EngineKind::NonCanonical.build(),
                wait_for: None,
                announce: Some(remote_done.clone()),
            }),
        ]);
        let a = engine.subscribe(&Expr::parse("hit = 1").unwrap()).unwrap(); // shard 0
        let b = engine.subscribe(&Expr::parse("hit = 1").unwrap()).unwrap(); // shard 1
        let scratches = ScratchPool::new(2);
        let mut scratch = MatchScratch::new();
        let stats = engine.match_event_parallel(&ev(&[("hit", 1)]), &scratches, &mut scratch);
        // Shard 1 provably finished first (it opened the gate shard 0
        // spins on), yet the merge is still shard 0 then shard 1.
        assert_eq!(scratch.matched(), &[a, b]);
        assert_eq!(stats.matched, 2);
    }

    #[test]
    fn usable_as_a_trait_object() {
        let mut engine: BoxedEngine = Box::new(ShardedEngine::new(EngineKind::CountingVariant, 2));
        let id = engine
            .subscribe(&Expr::parse("a = 1 or b = 2").unwrap())
            .unwrap();
        let mut scratch = MatchScratch::new();
        let result = engine.match_event(&ev(&[("b", 2)]), &mut scratch);
        assert_eq!(result.matched, vec![id]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedEngine::new(EngineKind::NonCanonical, 0);
    }
}
