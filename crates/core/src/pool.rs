//! Worker and scratch pooling for parallel shard fan-out.
//!
//! Sharding (PR 2) made subscription churn cheap, but a single publish
//! still visited every shard *sequentially* — per-event latency grew
//! with the shard count instead of shrinking. This module supplies the
//! three pieces that turn shard partitioning into intra-event
//! parallelism:
//!
//! * [`WorkerPool`] — a persistent pool of worker threads executing
//!   submitted jobs. The broker owns one per sharded instance, so a
//!   publish fans its per-shard matching out **without spawning a
//!   thread per publish**.
//! * [`ScratchPool`] — a non-blocking pool of warm [`MatchScratch`]es.
//!   Checkout applies the hygiene pair exactly once —
//!   [`MatchScratch::reset`] (clear state, keep capacity) and
//!   [`MatchScratch::ensure_capacity`] (grow to the engine at hand) —
//!   so in steady state a checked-out scratch allocates nothing.
//!   Checkout never blocks: slots are probed with `try_lock`, and when
//!   every slot is busy a fresh scratch is built instead of waiting.
//! * [`FanOut`] — a one-shot scatter/gather rendezvous: `N` indexed
//!   slots filled by workers, one caller waiting for all of them. Slot
//!   completion is panic-safe (a guard completes its slot on drop even
//!   if the job unwinds), so a crashed worker can never wedge or
//!   reorder the merge.
//!
//! [`crate::ShardedEngine::match_event_parallel`] composes these for
//! plain-value engines (using scoped threads, since the engine is
//! borrowed); `boolmatch-broker` composes them around its per-shard
//! locks for the publish hot path, where jobs capture `Arc`s and run on
//! the persistent pool.

use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::routing::lock_classes;

use crate::engine::FilterEngine;
use crate::{BatchScratch, MatchScratch};

// ---------------------------------------------------------------------------
// ScratchPool

/// A non-blocking pool of reusable [`MatchScratch`]es shared by fan-out
/// workers.
///
/// Each checkout probes the fixed slot array with `try_lock`: a free
/// warm scratch is taken if one is available, otherwise a fresh one is
/// built — a worker never blocks on another worker's checkout. Returned
/// scratches re-fill empty slots (beyond-capacity returns are simply
/// dropped), so the pool holds at most `slots` scratches and, once
/// every worker has warmed one up, stops allocating entirely — see
/// [`ScratchPool::heap_bytes`] for the steady-state probe the tests
/// use.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{EngineKind, ScratchPool};
///
/// let engine = EngineKind::NonCanonical.build();
/// let pool = ScratchPool::new(2);
/// {
///     let _scratch = pool.checkout(&engine); // hygiene applied once here
/// } // returned to the pool on drop
/// assert_eq!(pool.pooled(), 1);
/// ```
#[derive(Debug)]
pub struct ScratchPool {
    slots: Vec<Mutex<Option<MatchScratch>>>,
    /// Heap-byte cap above which a returning scratch is trimmed before
    /// parking; `usize::MAX` disables trimming.
    trim_cap: usize,
}

impl ScratchPool {
    /// A pool holding at most `slots` warm scratches (at least one),
    /// with no trim cap: a parked scratch keeps whatever high-water
    /// capacity it grew to. See [`ScratchPool::with_trim_cap`] for the
    /// bounded form.
    pub fn new(slots: usize) -> Self {
        Self::with_trim_cap(slots, usize::MAX)
    }

    /// A pool whose parked scratches are bounded: a scratch returning
    /// with more than `trim_cap` heap bytes is [trimmed]
    /// (capacity released) before it re-enters the pool, so one
    /// pathological event — say a 100k-candidate spike — cannot pin its
    /// peak allocation in every pooled scratch forever. The next
    /// checkout of a trimmed scratch re-grows lazily to the engine at
    /// hand.
    ///
    /// [trimmed]: MatchScratch::trim
    pub fn with_trim_cap(slots: usize, trim_cap: usize) -> Self {
        let slots: Vec<Mutex<Option<MatchScratch>>> =
            (0..slots.max(1)).map(|_| Mutex::new(None)).collect();
        for slot in &slots {
            slot.set_class(lock_classes::POOL);
        }
        ScratchPool { slots, trim_cap }
    }

    /// Maximum number of scratches the pool retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The heap-byte cap above which returning scratches are trimmed
    /// (`usize::MAX`: never).
    pub fn trim_cap(&self) -> usize {
        self.trim_cap
    }

    /// Number of scratches currently parked in the pool (skipping slots
    /// another thread holds locked at probe time).
    pub fn pooled(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Mutex::try_lock)
            .filter(|slot| slot.is_some())
            .count()
    }

    /// Total heap bytes held by the parked scratches — the steady-state
    /// probe: once the pool is warm, repeated checkouts against the
    /// same engines must leave this value unchanged.
    pub fn heap_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Mutex::try_lock)
            .filter_map(|slot| slot.as_ref().map(MatchScratch::heap_bytes))
            .sum()
    }

    // lint: hot-path — scratch checkout/return runs once per fan-out
    // job; pool slots are probed try-lock-only so a worker never
    // blocks here.

    /// Checks a scratch out for matching against `engine`, borrowing
    /// the pool. The hygiene pair — [`MatchScratch::reset`] +
    /// [`MatchScratch::ensure_capacity`] — runs exactly once, here.
    pub fn checkout(&self, engine: &(impl FilterEngine + ?Sized)) -> PooledScratch<'_> {
        PooledScratch {
            pool: self,
            scratch: Some(self.take(engine)),
        }
    }

    /// [`ScratchPool::checkout`] for `'static` contexts (jobs on a
    /// [`WorkerPool`]): the lease holds an `Arc` to the pool instead of
    /// a borrow.
    pub fn lease(self: &Arc<Self>, engine: &(impl FilterEngine + ?Sized)) -> ScratchLease {
        ScratchLease {
            pool: Arc::clone(self),
            scratch: Some(self.take(engine)),
        }
    }

    /// Checkout core: pop a warm scratch from the first free occupied
    /// slot (or build a fresh one), then apply the hygiene pair.
    fn take(&self, engine: &(impl FilterEngine + ?Sized)) -> MatchScratch {
        let mut scratch = self
            .slots
            .iter()
            .filter_map(Mutex::try_lock)
            .find_map(|mut slot| slot.take())
            .unwrap_or_default();
        scratch.reset();
        scratch.ensure_capacity(engine);
        scratch
    }

    /// Parks `scratch` in the first free empty slot; drops it when the
    /// pool is full or every slot is contended (never blocks). A
    /// scratch over the pool's [trim cap](ScratchPool::with_trim_cap)
    /// is trimmed first, so spikes do not pin high-water capacity.
    fn put(&self, mut scratch: MatchScratch) {
        if scratch.heap_bytes() > self.trim_cap {
            scratch.trim();
        }
        for slot in &self.slots {
            if let Some(mut slot) = slot.try_lock() {
                if slot.is_none() {
                    *slot = Some(scratch);
                    return;
                }
            }
        }
    }

    // lint: end-hot-path
}

/// A checked-out scratch borrowing its [`ScratchPool`]; derefs to
/// [`MatchScratch`] and returns the scratch on drop.
#[derive(Debug)]
pub struct PooledScratch<'a> {
    pool: &'a ScratchPool,
    scratch: Option<MatchScratch>,
}

/// A checked-out scratch holding its [`ScratchPool`] by `Arc` — the
/// `'static` form worker-pool jobs use; derefs to [`MatchScratch`] and
/// returns the scratch on drop.
#[derive(Debug)]
pub struct ScratchLease {
    pool: Arc<ScratchPool>,
    scratch: Option<MatchScratch>,
}

// lint: hot-path — guard derefs run on every scratch access during a
// match; the Option is only ever None after Drop took the scratch, so
// the expects below are unreachable while a guard is usable.
macro_rules! impl_scratch_guard {
    ($guard:ty, $target:ty) => {
        impl std::ops::Deref for $guard {
            type Target = $target;

            fn deref(&self) -> &$target {
                // lint: allow(panic-policy, reason = "guard invariant: the scratch is Some from construction until Drop")
                self.scratch.as_ref().expect("present until drop")
            }
        }

        impl std::ops::DerefMut for $guard {
            fn deref_mut(&mut self) -> &mut $target {
                // lint: allow(panic-policy, reason = "guard invariant: the scratch is Some from construction until Drop")
                self.scratch.as_mut().expect("present until drop")
            }
        }

        impl Drop for $guard {
            fn drop(&mut self) {
                // A guard dropped during a panic may hold a scratch
                // abandoned mid-match (e.g. hit counters half-updated —
                // state the checkout hygiene deliberately does not
                // re-clear). Pooling it would poison every later match
                // through it; drop it instead.
                if std::thread::panicking() {
                    return;
                }
                if let Some(scratch) = self.scratch.take() {
                    self.pool.put(scratch);
                }
            }
        }
    };
}

impl_scratch_guard!(PooledScratch<'_>, MatchScratch);
impl_scratch_guard!(ScratchLease, MatchScratch);
impl_scratch_guard!(PooledBatchScratch<'_>, BatchScratch);
impl_scratch_guard!(BatchScratchLease, BatchScratch);

// lint: end-hot-path

// ---------------------------------------------------------------------------
// BatchScratchPool

/// A non-blocking pool of reusable [`BatchScratch`]es — the batch-path
/// twin of [`ScratchPool`], with the same contract: `try_lock`-probed
/// slots (checkout never blocks), the hygiene pair applied exactly once
/// per checkout, over-cap returns trimmed before parking.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{BatchScratchPool, EngineKind};
///
/// let engine = EngineKind::Counting.build();
/// let pool = BatchScratchPool::new(2);
/// {
///     let _batch = pool.checkout(&engine); // hygiene applied once here
/// } // returned to the pool on drop
/// assert_eq!(pool.pooled(), 1);
/// ```
#[derive(Debug)]
pub struct BatchScratchPool {
    slots: Vec<Mutex<Option<BatchScratch>>>,
    trim_cap: usize,
}

impl BatchScratchPool {
    /// A pool holding at most `slots` warm batch scratches (at least
    /// one), with no trim cap.
    pub fn new(slots: usize) -> Self {
        Self::with_trim_cap(slots, usize::MAX)
    }

    /// A pool whose parked batch scratches are bounded: one returning
    /// with more than `trim_cap` heap bytes is [trimmed]
    /// (capacity released) before it re-enters the pool.
    ///
    /// [trimmed]: BatchScratch::trim
    pub fn with_trim_cap(slots: usize, trim_cap: usize) -> Self {
        let slots: Vec<Mutex<Option<BatchScratch>>> =
            (0..slots.max(1)).map(|_| Mutex::new(None)).collect();
        for slot in &slots {
            slot.set_class(lock_classes::POOL);
        }
        BatchScratchPool { slots, trim_cap }
    }

    /// Maximum number of batch scratches the pool retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of batch scratches currently parked (skipping slots
    /// another thread holds locked at probe time).
    pub fn pooled(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Mutex::try_lock)
            .filter(|slot| slot.is_some())
            .count()
    }

    /// Total heap bytes held by the parked batch scratches — the
    /// steady-state probe, like [`ScratchPool::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Mutex::try_lock)
            .filter_map(|slot| slot.as_ref().map(BatchScratch::heap_bytes))
            .sum()
    }

    // lint: hot-path — batch-scratch checkout/return runs once per
    // batch fan-out job; pool slots are probed try-lock-only so a
    // worker never blocks here.

    /// Checks a batch scratch out for matching against `engine`,
    /// borrowing the pool. The hygiene pair — [`BatchScratch::reset`] +
    /// [`BatchScratch::ensure_capacity`] — runs exactly once, here.
    pub fn checkout(&self, engine: &(impl FilterEngine + ?Sized)) -> PooledBatchScratch<'_> {
        PooledBatchScratch {
            pool: self,
            scratch: Some(self.take(engine)),
        }
    }

    /// [`BatchScratchPool::checkout`] for `'static` contexts (jobs on a
    /// [`WorkerPool`]): the lease holds an `Arc` to the pool instead of
    /// a borrow.
    pub fn lease(self: &Arc<Self>, engine: &(impl FilterEngine + ?Sized)) -> BatchScratchLease {
        BatchScratchLease {
            pool: Arc::clone(self),
            scratch: Some(self.take(engine)),
        }
    }

    /// Checkout core: pop a warm batch scratch from the first free
    /// occupied slot (or build a fresh one), then apply the hygiene
    /// pair.
    fn take(&self, engine: &(impl FilterEngine + ?Sized)) -> BatchScratch {
        let mut scratch = self
            .slots
            .iter()
            .filter_map(Mutex::try_lock)
            .find_map(|mut slot| slot.take())
            .unwrap_or_default();
        scratch.reset();
        scratch.ensure_capacity(engine);
        scratch
    }

    /// Parks `scratch` in the first free empty slot; drops it when the
    /// pool is full or every slot is contended (never blocks).
    fn put(&self, mut scratch: BatchScratch) {
        if scratch.heap_bytes() > self.trim_cap {
            scratch.trim();
        }
        for slot in &self.slots {
            if let Some(mut slot) = slot.try_lock() {
                if slot.is_none() {
                    *slot = Some(scratch);
                    return;
                }
            }
        }
    }

    // lint: end-hot-path
}

/// A checked-out batch scratch borrowing its [`BatchScratchPool`];
/// derefs to [`BatchScratch`] and returns the scratch on drop.
#[derive(Debug)]
pub struct PooledBatchScratch<'a> {
    pool: &'a BatchScratchPool,
    scratch: Option<BatchScratch>,
}

/// A checked-out batch scratch holding its [`BatchScratchPool`] by
/// `Arc` — the `'static` form worker-pool jobs use; derefs to
/// [`BatchScratch`] and returns the scratch on drop.
#[derive(Debug)]
pub struct BatchScratchLease {
    pool: Arc<BatchScratchPool>,
    scratch: Option<BatchScratch>,
}

// ---------------------------------------------------------------------------
// WorkerPool

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads draining a shared job queue.
///
/// Built for the broker's parallel publish pipeline: the pool is
/// created once (threads park between publishes) and each publish
/// submits one job per remote shard — no thread spawn on the hot path.
/// Jobs must be `'static` (capture `Arc`s, not borrows); for borrowed
/// data use [`crate::ShardedEngine::match_event_parallel`]'s scoped
/// fan-out instead.
///
/// A panicking job is caught on the worker (matching `parking_lot`'s
/// no-poisoning spirit) so the thread survives to serve later jobs;
/// pair jobs with [`FanOut`] slots to keep waiters safe from lost
/// completions.
#[derive(Debug)]
pub struct WorkerPool {
    jobs: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` parked worker threads (at least one).
    pub fn new(threads: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        rx.set_class(lock_classes::POOL);
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("boolmatch-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only while dequeuing.
                        let job = rx.lock().recv();
                        match job {
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            jobs: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    // lint: hot-path — submit runs once per remote shard per publish.

    /// Queues `job` for execution on some worker. A job submitted to a
    /// pool torn down concurrently (sender gone or workers exited) is
    /// dropped, not run — safe for fan-out jobs, whose captured
    /// [`SlotGuard`] completes its slot as `None` on drop.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(jobs) = &self.jobs {
            let _ = jobs.send(Box::new(job));
        }
    }

    // lint: end-hot-path
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker drain the queue and exit.
        drop(self.jobs.take());
        let me = std::thread::current().id();
        for worker in self.workers.drain(..) {
            if worker.thread().id() == me {
                // The pool is being dropped from inside one of its own
                // jobs (a job held the last reference to the pool's
                // owner). Joining ourselves would deadlock; detach
                // instead — this thread exits on its own once the
                // closed queue drains.
                continue;
            }
            let _ = worker.join();
        }
    }
}

// ---------------------------------------------------------------------------
// FanOut

struct FanState<T> {
    slots: Vec<Option<T>>,
    remaining: usize,
}

/// A one-shot scatter/gather rendezvous: `n` indexed slots, each
/// completed exactly once by a worker, and one caller waiting for all
/// of them.
///
/// The slot index — not completion order — decides where a result
/// lands, so the caller's merge is deterministic no matter how the
/// workers interleave (a stalled shard cannot reorder another shard's
/// result). [`SlotGuard`] completes its slot on drop even when the job
/// panics before filling it, so [`FanOut::wait`] can never hang on a
/// crashed worker; an unfilled slot surfaces as `None`.
///
/// # Examples
///
/// ```
/// use boolmatch_core::FanOut;
///
/// let run = FanOut::new(2);
/// run.slot(1).fill("right");
/// run.slot(0).fill("left");
/// assert_eq!(run.wait(), vec![Some("left"), Some("right")]);
/// ```
pub struct FanOut<T> {
    // std Mutex (not the classed shim): the guard must be handed to
    // Condvar::wait, which only std's guard type supports. The lock is
    // a leaf — complete/wait touch nothing else while holding it — so
    // it needs no lockdep class.
    state: StdMutex<FanState<T>>,
    done: Condvar,
}

impl<T> FanOut<T> {
    /// A rendezvous over `n` slots, shared between caller and workers.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(FanOut {
            state: StdMutex::new(FanState {
                slots: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        })
    }

    /// The completion guard for slot `index`; hand it to the worker
    /// responsible for that slot.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn slot(self: &Arc<Self>, index: usize) -> SlotGuard<T> {
        assert!(index < self.lock().slots.len(), "slot index out of range");
        SlotGuard {
            run: Arc::clone(self),
            index,
            completed: false,
        }
    }

    /// Blocks until every slot has completed, then takes the results in
    /// slot order. `None` marks a slot whose worker dropped its guard
    /// without filling it (e.g. after a panic).
    pub fn wait(&self) -> Vec<Option<T>> {
        let mut state = self.lock();
        while state.remaining > 0 {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        std::mem::take(&mut state.slots)
    }

    /// Like [`FanOut::wait`], but drains each result through `f` (in
    /// slot order) **without** taking the slot vector — the allocation
    /// stays with the rendezvous, so a pooled `FanOut` reused via
    /// [`FanOutPool`] allocates nothing in steady state.
    pub fn wait_each(&self, mut f: impl FnMut(Option<T>)) {
        let mut state = self.lock();
        while state.remaining > 0 {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        for slot in &mut state.slots {
            f(slot.take());
        }
    }

    /// Re-arms a spent rendezvous for `n` fresh slots, reusing the slot
    /// vector's capacity. Only a rendezvous whose previous run fully
    /// completed (every guard consumed or dropped) may be reset —
    /// [`FanOutPool::checkout`] additionally proves no guard still
    /// holds the `Arc` before calling this.
    ///
    /// # Panics
    ///
    /// Panics if slots from the previous run are still outstanding.
    fn reset(&self, n: usize) {
        let mut state = self.lock();
        assert_eq!(
            state.remaining, 0,
            "resetting a rendezvous with outstanding slots"
        );
        state.slots.clear();
        state.slots.resize_with(n, || None);
        state.remaining = n;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FanState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn complete(&self, index: usize, value: Option<T>) {
        let mut state = self.lock();
        state.slots[index] = value;
        state.remaining -= 1;
        let all_done = state.remaining == 0;
        drop(state);
        if all_done {
            self.done.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for FanOut<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanOut")
            .field("remaining", &self.lock().remaining)
            .finish()
    }
}

/// Completion guard for one [`FanOut`] slot: [`SlotGuard::fill`] stores
/// the worker's result; dropping unfilled (panic path) completes the
/// slot as `None` so the waiter is released either way.
pub struct SlotGuard<T> {
    run: Arc<FanOut<T>>,
    index: usize,
    completed: bool,
}

impl<T> SlotGuard<T> {
    /// Completes the slot with `value`.
    pub fn fill(mut self, value: T) {
        self.completed = true;
        self.run.complete(self.index, Some(value));
    }
}

impl<T> Drop for SlotGuard<T> {
    fn drop(&mut self) {
        if !self.completed {
            self.run.complete(self.index, None);
        }
    }
}

impl<T> std::fmt::Debug for SlotGuard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotGuard")
            .field("index", &self.index)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// FanOutPool

/// A non-blocking pool of reusable [`FanOut`] rendezvous — the
/// [`ScratchPool`]-style checkout that takes the per-publish rendezvous
/// allocation off the broker's parallel hot path.
///
/// [`FanOutPool::checkout`] probes the fixed slot array with
/// `try_lock`: a parked rendezvous is re-armed (slot vector capacity
/// reused, no allocation) if — and only if — nothing else still holds
/// its `Arc`; otherwise a fresh one is built. Workers may legitimately
/// hold a rendezvous `Arc` for a moment *after* the caller's `wait`
/// returns (a [`SlotGuard`] drops its reference after completing its
/// slot), so the checkout's uniqueness check is what makes reuse safe:
/// a rendezvous is only ever re-armed once every reference from its
/// previous run is gone. [`FanOutPool::park`] returns a waited-on
/// rendezvous for reuse (never blocks; dropped when the pool is full).
///
/// # Examples
///
/// ```
/// use boolmatch_core::FanOutPool;
///
/// let pool: FanOutPool<u32> = FanOutPool::new(1);
/// let run = pool.checkout(2);
/// run.slot(0).fill(10);
/// run.slot(1).fill(20);
/// let mut out = Vec::new();
/// run.wait_each(|v| out.push(v));
/// assert_eq!(out, vec![Some(10), Some(20)]);
/// pool.park(run);
/// assert_eq!(pool.pooled(), 1); // reused by the next checkout
/// ```
#[derive(Debug)]
pub struct FanOutPool<T> {
    slots: Vec<Mutex<Option<Arc<FanOut<T>>>>>,
}

impl<T> FanOutPool<T> {
    /// A pool retaining at most `slots` parked rendezvous (at least
    /// one).
    pub fn new(slots: usize) -> Self {
        let slots: Vec<Mutex<Option<Arc<FanOut<T>>>>> =
            (0..slots.max(1)).map(|_| Mutex::new(None)).collect();
        for slot in &slots {
            slot.set_class(lock_classes::POOL);
        }
        FanOutPool { slots }
    }

    // lint: hot-path — rendezvous checkout/park runs once per parallel
    // publish; slots are probed try-lock-only.

    /// Checks out a rendezvous armed for `n` slots: a parked one whose
    /// previous run has fully let go (its `Arc` is unique) is re-armed
    /// in place, otherwise a fresh one is allocated.
    pub fn checkout(&self, n: usize) -> Arc<FanOut<T>> {
        for slot in &self.slots {
            if let Some(mut guard) = slot.try_lock() {
                // The uniqueness check is race-free: the only way to
                // reach this Arc is through the slot we hold locked, so
                // a count of 1 cannot grow under us.
                if let Some(run) = guard.take_if(|run| Arc::strong_count(run) == 1) {
                    drop(guard);
                    run.reset(n);
                    return run;
                }
            }
        }
        FanOut::new(n)
    }

    /// Parks a rendezvous for reuse after its `wait`/`wait_each`
    /// returned. Never blocks; when every slot is full or contended the
    /// rendezvous is simply dropped.
    pub fn park(&self, run: Arc<FanOut<T>>) {
        debug_assert_eq!(
            run.lock().remaining,
            0,
            "parking a rendezvous that was never waited on"
        );
        for slot in &self.slots {
            if let Some(mut guard) = slot.try_lock() {
                if guard.is_none() {
                    *guard = Some(run);
                    return;
                }
            }
        }
    }

    // lint: end-hot-path

    /// Number of rendezvous currently parked (skipping slots another
    /// thread holds locked at probe time).
    pub fn pooled(&self) -> usize {
        self.slots
            .iter()
            .filter_map(Mutex::try_lock)
            .filter(|slot| slot.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;
    use boolmatch_expr::Expr;
    use boolmatch_types::Event;

    #[test]
    fn checkout_reuses_and_stops_allocating() {
        let mut engine = EngineKind::NonCanonical.build();
        for i in 0..50 {
            engine
                .subscribe(&Expr::parse(&format!("(a = {i} or b = 1) and c <= {i}")).unwrap())
                .unwrap();
        }
        let pool = ScratchPool::new(2);
        let event = Event::builder().attr("b", 1_i64).attr("c", 0_i64).build();

        // Warm-up: one checkout grows the scratch to the engine.
        {
            let mut scratch = pool.checkout(&engine);
            engine.match_event_into(&event, &mut scratch);
        }
        assert_eq!(pool.pooled(), 1);
        let warm = pool.heap_bytes();
        assert!(warm > 0);

        // Steady state: repeated checkouts re-use the warm scratch and
        // the pool's footprint stays bit-identical.
        for _ in 0..100 {
            let mut scratch = pool.checkout(&engine);
            let stats = engine.match_event_into(&event, &mut scratch);
            assert_eq!(stats.matched, 50);
        }
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.heap_bytes(), warm, "steady state allocates nothing");
    }

    #[test]
    fn batch_checkout_reuses_and_stops_allocating() {
        let mut engine = EngineKind::Counting.build();
        for i in 0..50 {
            engine
                .subscribe(&Expr::parse(&format!("(a = {i} or b = 1) and c <= {i}")).unwrap())
                .unwrap();
        }
        let pool = BatchScratchPool::new(2);
        let events: Vec<Arc<Event>> = (0..80)
            .map(|_| Arc::new(Event::builder().attr("b", 1_i64).attr("c", 0_i64).build()))
            .collect();

        // Warm-up: two batches grow every lane/scalar buffer fully.
        for _ in 0..2 {
            let mut batch = pool.checkout(&engine);
            engine.match_batch(&events, &[], &mut batch);
        }
        assert_eq!(pool.pooled(), 1);
        let warm = pool.heap_bytes();
        assert!(warm > 0);

        // Steady state: repeated checkouts re-use the warm batch
        // scratch and the pool's footprint stays bit-identical.
        for _ in 0..50 {
            let mut batch = pool.checkout(&engine);
            let stats = engine.match_batch(&events, &[], &mut batch);
            assert_eq!(stats.batch_events, 80);
        }
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.heap_bytes(), warm, "steady state allocates nothing");
    }

    #[test]
    fn batch_pool_trims_oversized_returns() {
        let mut engine = EngineKind::Counting.build();
        for i in 0..64 {
            engine
                .subscribe(&Expr::parse(&format!("x{i} = 1 and y{i} = 2")).unwrap())
                .unwrap();
        }
        let pool = BatchScratchPool::with_trim_cap(1, 64);
        let events: Vec<Arc<Event>> = (0..70)
            .map(|_| Arc::new(Event::builder().attr("x0", 1_i64).build()))
            .collect();
        {
            let mut batch = pool.checkout(&engine);
            engine.match_batch(&events, &[], &mut batch);
            assert!(batch.heap_bytes() > 64);
        }
        // The oversized return was trimmed before parking.
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.heap_bytes(), 0);
    }

    #[test]
    fn concurrent_checkouts_never_block_and_pool_caps_retention() {
        let engine = EngineKind::Counting.build();
        let pool = ScratchPool::new(2);
        // Three concurrent checkouts from a 2-slot pool: the third gets
        // a fresh scratch instead of blocking.
        let a = pool.checkout(&engine);
        let b = pool.checkout(&engine);
        let c = pool.checkout(&engine);
        drop(a);
        drop(b);
        drop(c); // pool full: this one is dropped, not parked
        assert_eq!(pool.pooled(), 2);
        assert_eq!(pool.capacity(), 2);
    }

    #[test]
    fn oversized_scratches_are_trimmed_on_return() {
        let mut engine = EngineKind::NonCanonical.build();
        for i in 0..64 {
            engine
                .subscribe(&Expr::parse(&format!("(a = {i} or b = 1) and c <= {i}")).unwrap())
                .unwrap();
        }
        let event = Event::builder().attr("b", 1_i64).attr("c", 0_i64).build();

        // Uncapped pool (the old behaviour): the match's high-water
        // capacity stays pinned in the parked scratch.
        let uncapped = ScratchPool::new(1);
        {
            let mut scratch = uncapped.checkout(&engine);
            engine.match_event_into(&event, &mut scratch);
        }
        let pinned = uncapped.heap_bytes();
        assert!(pinned > 64, "the spike grew the scratch");

        // Capped pool: the same spike is trimmed on return — the
        // scratch is still parked (warm slot), but its capacity is
        // released instead of pinned forever.
        let capped = ScratchPool::with_trim_cap(1, 64);
        assert_eq!(capped.trim_cap(), 64);
        {
            let mut scratch = capped.checkout(&engine);
            engine.match_event_into(&event, &mut scratch);
            assert!(scratch.heap_bytes() > 64);
        }
        assert_eq!(capped.pooled(), 1, "trimmed, not dropped");
        assert_eq!(capped.heap_bytes(), 0, "high-water capacity released");

        // A trimmed scratch still matches correctly on re-checkout.
        let mut scratch = capped.checkout(&engine);
        let stats = engine.match_event_into(&event, &mut scratch);
        assert_eq!(stats.matched, 64);
    }

    #[test]
    fn lease_is_static_and_returns_on_drop() {
        let engine = EngineKind::NonCanonical.build();
        let pool = Arc::new(ScratchPool::new(1));
        let lease = pool.lease(&engine);
        let handle = std::thread::spawn(move || drop(lease));
        handle.join().unwrap();
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn worker_pool_runs_jobs_and_survives_panics() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        let run = FanOut::new(3);
        for i in 0..3 {
            let slot = run.slot(i);
            pool.submit(move || {
                if i == 1 {
                    panic!("job 1 crashes");
                }
                slot.fill(i * 10);
            });
        }
        assert_eq!(run.wait(), vec![Some(0), None, Some(20)]);

        // The pool still serves jobs after a panic.
        let again = FanOut::new(1);
        let slot = again.slot(0);
        pool.submit(move || slot.fill(7usize));
        assert_eq!(again.wait(), vec![Some(7)]);
    }

    #[test]
    fn fan_out_orders_by_slot_not_completion() {
        let run = FanOut::new(4);
        // Fill in scrambled order from scrambled threads.
        let mut handles = Vec::new();
        for (i, v) in [(3usize, 'd'), (0, 'a'), (2, 'c'), (1, 'b')] {
            let slot = run.slot(i);
            handles.push(std::thread::spawn(move || slot.fill(v)));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(run.wait(), vec![Some('a'), Some('b'), Some('c'), Some('d')]);
    }

    #[test]
    fn panicked_holder_does_not_poison_the_pool() {
        let pool = Arc::new(ScratchPool::new(1));
        let job_pool = Arc::clone(&pool);
        let result = std::thread::spawn(move || {
            let engine = EngineKind::Counting.build();
            let mut lease = job_pool.lease(&engine);
            // Stand-in for counters left half-updated by a panic inside
            // phase 2 (which normally restores them before returning).
            lease.hit.push(7);
            panic!("mid-match");
        })
        .join();
        assert!(result.is_err(), "the holder panicked");
        assert_eq!(
            pool.pooled(),
            0,
            "the abandoned scratch was dropped, not re-pooled"
        );
        // The pool itself still works.
        let engine = EngineKind::Counting.build();
        drop(pool.checkout(&engine));
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn pool_dropped_from_its_own_worker_detaches_instead_of_deadlocking() {
        use std::sync::atomic::{AtomicBool, Ordering};

        // A job holds the last Arc to the pool (standing in for a job
        // holding the last reference to a pool-owning broker). The main
        // thread provably drops its handle first, so the pool's Drop
        // runs on the worker — which must skip joining itself.
        let pool = Arc::new(WorkerPool::new(1));
        let run = FanOut::new(1);
        let slot = run.slot(0);
        let job_pool = Arc::clone(&pool);
        let main_dropped = Arc::new(AtomicBool::new(false));
        let gate = Arc::clone(&main_dropped);
        pool.submit(move || {
            slot.fill(());
            while !gate.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            drop(job_pool); // the last handle: WorkerPool::drop runs here
        });
        assert_eq!(run.wait(), vec![Some(())]);
        drop(pool);
        main_dropped.store(true, Ordering::Release);
        // Nothing to assert beyond termination: the old self-join
        // deadlocked (panicking with EDEADLK) right here.
    }

    #[test]
    fn zero_sized_pools_clamp_to_one() {
        assert_eq!(ScratchPool::new(0).capacity(), 1);
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(FanOutPool::<()>::new(0).slots.len(), 1);
    }

    #[test]
    fn fan_out_pool_reuses_the_rendezvous_allocation() {
        let pool: FanOutPool<usize> = FanOutPool::new(1);
        let first = pool.checkout(3);
        for i in 0..3 {
            first.slot(i).fill(i);
        }
        let mut got = Vec::new();
        first.wait_each(|v| got.push(v));
        assert_eq!(got, vec![Some(0), Some(1), Some(2)]);
        pool.park(first);
        assert_eq!(pool.pooled(), 1);

        // The next checkout re-arms the SAME rendezvous (pointer
        // equality proves no fresh allocation), even for a different
        // slot count.
        let peek = {
            let guard = pool.slots[0].try_lock().unwrap();
            Arc::as_ptr(guard.as_ref().unwrap())
        };
        let second = pool.checkout(2);
        assert!(
            std::ptr::eq(peek, Arc::as_ptr(&second)),
            "rendezvous reused"
        );
        assert_eq!(pool.pooled(), 0);
        second.slot(1).fill(9);
        second.slot(0).fill(8);
        assert_eq!(second.wait(), vec![Some(8), Some(9)]);
        pool.park(second);
    }

    #[test]
    fn fan_out_pool_skips_rendezvous_still_referenced_by_a_late_worker() {
        let pool: FanOutPool<u8> = FanOutPool::new(1);
        let run = pool.checkout(1);
        let straggler = Arc::clone(&run); // a worker still holding on
        run.slot(0).fill(1);
        run.wait_each(|_| {});
        pool.park(run);
        assert_eq!(pool.pooled(), 1);
        // The parked rendezvous is not unique, so checkout must build a
        // fresh one rather than re-arm under the straggler.
        let fresh = pool.checkout(1);
        assert!(!Arc::ptr_eq(&fresh, &straggler));
        drop(straggler);
        // Once the straggler lets go, the parked one is reusable again.
        let reused = pool.checkout(1);
        assert_eq!(pool.pooled(), 0);
        drop(reused);
        drop(fresh);
    }

    #[test]
    fn fan_out_pool_park_drops_overflow() {
        let pool: FanOutPool<u8> = FanOutPool::new(1);
        let a = pool.checkout(0);
        let b = pool.checkout(0);
        a.wait_each(|_| {});
        b.wait_each(|_| {});
        pool.park(a);
        pool.park(b); // pool full: dropped, not parked
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    #[should_panic(expected = "outstanding slots")]
    fn resetting_an_armed_rendezvous_panics() {
        let run: Arc<FanOut<u8>> = FanOut::new(2);
        let _guard = run.slot(0);
        run.reset(1);
    }

    #[test]
    #[should_panic(expected = "slot index out of range")]
    fn out_of_range_slot_panics() {
        let run = FanOut::<()>::new(1);
        let _ = run.slot(1);
    }
}
