//! The canonical baselines: the counting algorithm and its
//! candidate-driven variant.
//!
//! Both engines accept the same arbitrary Boolean subscriptions as the
//! non-canonical engine, but — like every conjunctive-only matcher —
//! they must first **transform each subscription into DNF** and
//! register every conjunction as a separate *flat subscription*
//! (paper §1–2). The tables follow the memory-friendly implementation
//! the paper compares against (Ashayer et al. [2]): a
//! *subscription-predicate count vector* and a *hit vector* with
//! one-byte entries, plus the predicate→conjunction association table.
//!
//! The two engines share all tables and differ only in phase 2:
//!
//! * [`CountingEngine`] compares hit and count entries for **every**
//!   registered conjunction — cost linear in the (transformed)
//!   subscription count, the linear curves of Fig. 3.
//! * [`CountingVariantEngine`] records **candidate** conjunctions while
//!   incrementing and compares only those (paper §3.3) — sublinear, but
//!   still paying the full transformation blow-up in memory and
//!   redundant increments.

use boolmatch_expr::{transform, Expr};
use boolmatch_index::PredicateIndex;
use boolmatch_types::Event;

use std::sync::Arc;

use crate::assoc::AssocTable;
use crate::engine::{EngineKind, FilterEngine, SubscribeError, UnsubscribeError};
use crate::scratch::LANE_WIDTH;
use crate::{
    BatchScratch, FulfilledSet, MatchScratch, MatchStats, MemoryUsage, PredicateId,
    PredicateInterner, SubscriptionId,
};

/// Configuration shared by both counting engines.
#[derive(Debug, Clone)]
pub struct CountingConfig {
    /// Maximum conjunctions a single subscription may expand to;
    /// [`FilterEngine::subscribe`] fails with
    /// [`SubscribeError::DnfTooLarge`] beyond it. The paper's workloads
    /// need at most 32.
    pub dnf_limit: usize,
    /// Maintain the phase-1 predicate index (see
    /// [`crate::NonCanonicalConfig::enable_phase1_index`]).
    pub enable_phase1_index: bool,
}

impl Default for CountingConfig {
    fn default() -> Self {
        CountingConfig {
            dnf_limit: 65_536,
            enable_phase1_index: true,
        }
    }
}

/// Maximum predicates per conjunct: hit/count vector entries are one
/// byte (paper §3.3 assumes at most 256 predicates per subscription).
const MAX_CONJUNCT_WIDTH: usize = 255;

/// Sentinel for a freed flat slot's original-subscription column.
const DEAD_ORIG: u32 = u32::MAX;

/// Everything both counting engines share.
#[derive(Debug)]
struct CountingTables {
    config: CountingConfig,
    interner: PredicateInterner,
    index: PredicateIndex<PredicateId>,
    /// Predicate → flat conjunctions containing it.
    assoc: AssocTable<u32>,
    /// Flat conjunction → number of predicates (0 = dead slot).
    cnt: Vec<u8>,
    /// Flat conjunction → original subscription (dense index).
    flat_orig: Vec<u32>,
    free_flats: Vec<u32>,
    /// Original subscription → unsubscription metadata.
    origs: Vec<Option<OrigMeta>>,
    live_origs: usize,
    live_flats: usize,
}

/// Per-original-subscription bookkeeping needed only for
/// unsubscription (the paper's baseline omits this; kept in a separate
/// [`MemoryUsage`] bucket so the memory-wall model can exclude it).
#[derive(Debug)]
struct OrigMeta {
    flats: Vec<u32>,
    /// Interner acquisitions (NNF leaf occurrences) to release.
    acquired: Vec<PredicateId>,
}

impl CountingTables {
    fn new(config: CountingConfig) -> Self {
        CountingTables {
            config,
            interner: PredicateInterner::new(),
            index: PredicateIndex::new(),
            assoc: AssocTable::new(),
            cnt: Vec::new(),
            flat_orig: Vec::new(),
            free_flats: Vec::new(),
            origs: Vec::new(),
            live_origs: 0,
            live_flats: 0,
        }
    }

    fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        // Negation is pushed into the leaves first; the DNF then draws
        // its predicates from this NNF form. Interning the NNF leaves in
        // syntactic order keeps predicate ids aligned with the
        // non-canonical engine for NOT-free subscriptions (Fig. 3
        // workloads), which the cross-engine benches rely on.
        let nnf = transform::eliminate_not(expr);
        let dnf = transform::to_dnf(&nnf, self.config.dnf_limit)?;
        for conjunct in dnf.conjuncts() {
            if conjunct.len() > MAX_CONJUNCT_WIDTH {
                return Err(SubscribeError::ConjunctTooWide {
                    width: conjunct.len(),
                });
            }
        }

        let mut acquired = Vec::with_capacity(nnf.predicate_count());
        nnf.for_each_predicate(&mut |p| {
            let (id, fresh) = self.interner.intern(p);
            if fresh && self.config.enable_phase1_index {
                self.index.insert(id, p);
            }
            acquired.push(id);
        });

        let orig_index = self.origs.len();
        let orig_u32 = u32::try_from(orig_index).expect("more than u32::MAX subscriptions");
        let mut flats = Vec::with_capacity(dnf.len());
        for conjunct in dnf.conjuncts() {
            let flat = match self.free_flats.pop() {
                Some(f) => f,
                None => {
                    let f = u32::try_from(self.cnt.len()).expect("more than u32::MAX conjunctions");
                    self.cnt.push(0);
                    self.flat_orig.push(DEAD_ORIG);
                    f
                }
            };
            self.cnt[flat as usize] = conjunct.len() as u8;
            self.flat_orig[flat as usize] = orig_u32;
            for pred in conjunct {
                let pid = self
                    .interner
                    .get(pred)
                    .expect("conjunct predicates come from the interned NNF");
                self.assoc.add(pid, flat);
            }
            flats.push(flat);
            self.live_flats += 1;
        }
        self.origs.push(Some(OrigMeta { flats, acquired }));
        self.live_origs += 1;
        Ok(SubscriptionId::from_index(orig_index))
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
        let slot = self
            .origs
            .get_mut(id.index())
            .ok_or(UnsubscribeError::UnknownSubscription(id))?;
        let meta = slot
            .take()
            .ok_or(UnsubscribeError::UnknownSubscription(id))?;

        // Remove this subscription's postings: each unique acquired
        // predicate's association list is filtered against the flat set.
        let mut flats_sorted = meta.flats.clone();
        flats_sorted.sort_unstable();
        let mut unique = meta.acquired.clone();
        unique.sort_unstable();
        unique.dedup();
        for pid in unique {
            self.assoc
                .remove_matching(pid, |f| flats_sorted.binary_search(f).is_ok());
        }
        for flat in meta.flats {
            self.cnt[flat as usize] = 0;
            self.flat_orig[flat as usize] = DEAD_ORIG;
            self.free_flats.push(flat);
            self.live_flats -= 1;
        }
        for pid in meta.acquired {
            if self.interner.release(pid) && self.config.enable_phase1_index {
                self.index.remove(pid, self.interner.resolve(pid));
            }
        }
        self.live_origs -= 1;
        Ok(())
    }

    fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
        out.begin(self.interner.universe());
        self.index.for_each_match(event, |id| out.insert(id));
    }

    /// Phase 2 of the classic counting algorithm: increment hit
    /// counters, then scan **every** flat conjunction.
    ///
    /// The hit counters and the matched-original stamps live in the
    /// caller's `scratch`; both are restored to their between-events
    /// state (all hit counters zero) before returning.
    fn phase2_counting(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        let mut stats = MatchStats {
            fulfilled: fulfilled.len(),
            ..MatchStats::default()
        };
        let gen = scratch.begin_stamps(self.origs.len());
        scratch.ensure_hit(self.cnt.len());

        for &pid in fulfilled.ids() {
            for &flat in self.assoc.get(pid) {
                scratch.hit[flat as usize] += 1;
                stats.increments += 1;
            }
        }

        // "The subscription matching step works on a multiple of the
        // number of original registered subscriptions" (§2.2): the scan
        // covers every flat slot, live or not.
        for flat in 0..self.cnt.len() {
            stats.comparisons += 1;
            let h = scratch.hit[flat];
            if h != 0 {
                if h == self.cnt[flat] {
                    let orig = self.flat_orig[flat];
                    let stamp = &mut scratch.stamps[orig as usize];
                    if *stamp != gen {
                        *stamp = gen;
                        matched.push(SubscriptionId::from_index(orig as usize));
                    }
                }
                scratch.hit[flat] = 0;
            }
        }
        stats.matched = matched.len();
        stats
    }

    /// Phase 2 of the paper's counting variant: only candidate
    /// conjunctions (those with at least one hit) are compared.
    fn phase2_variant(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        let mut stats = MatchStats {
            fulfilled: fulfilled.len(),
            ..MatchStats::default()
        };
        let gen = scratch.begin_stamps(self.origs.len());
        scratch.ensure_hit(self.cnt.len());

        let mut candidates = std::mem::take(&mut scratch.candidates);
        candidates.clear();
        for &pid in fulfilled.ids() {
            for &flat in self.assoc.get(pid) {
                let h = &mut scratch.hit[flat as usize];
                if *h == 0 {
                    candidates.push(flat);
                }
                *h += 1;
                stats.increments += 1;
            }
        }
        stats.candidates = candidates.len();

        for &flat in &candidates {
            stats.comparisons += 1;
            if scratch.hit[flat as usize] == self.cnt[flat as usize] {
                let orig = self.flat_orig[flat as usize];
                let stamp = &mut scratch.stamps[orig as usize];
                if *stamp != gen {
                    *stamp = gen;
                    matched.push(SubscriptionId::from_index(orig as usize));
                }
            }
            scratch.hit[flat as usize] = 0;
        }
        scratch.candidates = candidates;
        stats.matched = matched.len();
        stats
    }

    /// Batch kernel of [`CountingEngine`]: full-scan phase 2 over
    /// transposed hit lanes.
    fn match_batch_counting(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        batch: &mut BatchScratch,
    ) -> MatchStats {
        self.match_batch_impl(events, skip, batch, false)
    }

    /// Batch kernel of [`CountingVariantEngine`]: candidate-driven
    /// phase 2 over transposed hit lanes.
    fn match_batch_variant(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        batch: &mut BatchScratch,
    ) -> MatchStats {
        self.match_batch_impl(events, skip, batch, true)
    }

    /// The shared lane kernel. Events are processed in chunks of up to
    /// [`LANE_WIDTH`] lanes; within a chunk the predicate→conjunction
    /// association table is walked **once** — each fulfilled predicate's
    /// postings increment the hit counters of every lane fulfilling it
    /// (`lanes[flat * LANE_WIDTH + lane]`, so one posting touches
    /// contiguous bytes), and the count vector is then read once per
    /// flat slot for all lanes together, comparing eight lane counters
    /// per step ([`scan_lane_region`](Self::scan_lane_region)).
    /// `variant` selects the candidate-driven scan (paper §3.3)
    /// instead of the full scan.
    ///
    /// Chunks with a single non-skipped event delegate to the scalar
    /// phase-2, so `B = 1` batches run the byte-identical per-event
    /// path.
    fn match_batch_impl(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        batch: &mut BatchScratch,
        variant: bool,
    ) -> MatchStats {
        debug_assert!(
            skip.is_empty() || skip.len() == events.len(),
            "skip mask must be empty or one flag per event"
        );
        batch.begin_batch(events.len());
        batch.ensure_chunk_buffers();
        batch.ensure_lanes(self.cnt.len());
        batch.ensure_marks(self.origs.len());
        let mut stats = MatchStats::default();

        let mut base = 0;
        while base < events.len() {
            let chunk_len = LANE_WIDTH.min(events.len() - base);
            let active = (0..chunk_len)
                .filter(|&l| !skip.get(base + l).copied().unwrap_or(false))
                .count();
            if active == 0 {
                base += chunk_len;
                continue;
            }
            if active == 1 {
                // Single live lane: the lane kernel would only add
                // transposition overhead — run the scalar path instead.
                let l = (0..chunk_len)
                    .find(|&l| !skip.get(base + l).copied().unwrap_or(false))
                    .expect("active == 1 guarantees a live lane");
                let e = base + l;
                let mut fulfilled = std::mem::take(&mut batch.scalar.fulfilled);
                self.phase1(&events[e], &mut fulfilled);
                let mut out = std::mem::take(&mut batch.matched[e]);
                let s = if variant {
                    self.phase2_variant(&fulfilled, &mut batch.scalar, &mut out)
                } else {
                    self.phase2_counting(&fulfilled, &mut batch.scalar, &mut out)
                };
                batch.scalar.fulfilled = fulfilled;
                batch.matched[e] = out;
                stats = stats + s;
                stats.batch_events += 1;
                stats.batch_passes += 1;
                base += chunk_len;
                continue;
            }

            // Phase 1 per live lane, then a stamped union of the lanes'
            // fulfilled predicates: one row per distinct predicate with
            // a u64 mask of the lanes fulfilling it.
            let gen = batch.begin_union(self.interner.universe());
            for l in 0..chunk_len {
                if skip.get(base + l).copied().unwrap_or(false) {
                    continue;
                }
                self.phase1(&events[base + l], &mut batch.fulfilled[l]);
                stats.fulfilled += batch.fulfilled[l].len();
                for &pid in batch.fulfilled[l].ids() {
                    let p = pid.index();
                    if batch.pred_stamps[p] != gen {
                        batch.pred_stamps[p] = gen;
                        batch.pred_rows[p] = batch.union_ids.len() as u32;
                        batch.union_ids.push(pid.raw());
                        batch.union_mask.push(0);
                    }
                    batch.union_mask[batch.pred_rows[p] as usize] |= 1 << l;
                }
            }

            // One association-table pass for the whole chunk: each
            // posting's hit lanes are LANE_WIDTH contiguous bytes. The
            // variant collects candidates chunk-globally (first touch
            // of a flat unit by *any* lane) so its scan can stream each
            // touched lane region once; per-(unit, lane) first touches
            // are still counted so the stats stay scalar-equivalent.
            let mut lane_candidates = 0;
            for (row, &raw) in batch.union_ids.iter().enumerate() {
                let mask = batch.union_mask[row];
                let postings = self.assoc.get(PredicateId::from_raw(raw));
                stats.increments += postings.len() * mask.count_ones() as usize;
                for &flat in postings {
                    let lane_base = flat as usize * LANE_WIDTH;
                    if variant && batch.unit_stamps[flat as usize] != gen {
                        batch.unit_stamps[flat as usize] = gen;
                        batch.unit_candidates.push(flat);
                    }
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let h = &mut batch.lanes[lane_base + l];
                        if variant && *h == 0 {
                            lane_candidates += 1;
                        }
                        *h += 1;
                    }
                }
            }

            if variant {
                // Candidate-driven scan (paper §3.3), one pass over
                // each touched unit's lane region. A per-lane candidate
                // walk would stride one cache line per (candidate,
                // lane); the region scan reads the same 64 bytes as
                // eight words instead.
                stats.candidates += lane_candidates;
                stats.comparisons += lane_candidates;
                let words_used = chunk_len.div_ceil(8);
                let cands = std::mem::take(&mut batch.unit_candidates);
                for &flat in &cands {
                    self.scan_lane_region(flat as usize, base, words_used, batch);
                }
                batch.unit_candidates = cands;
                batch.unit_candidates.clear();
            } else {
                // Full scan: the count vector entry and the original-
                // subscription column are read once per flat slot for
                // all lanes, and the lane counters are compared eight
                // at a time.
                let words_used = chunk_len.div_ceil(8);
                for flat in 0..self.cnt.len() {
                    self.scan_lane_region(flat, base, words_used, batch);
                }
                stats.comparisons += self.cnt.len() * active;
            }

            // Restore the dedup marks through the output lists, like the
            // scalar path restores the hit vector through candidates.
            for l in 0..chunk_len {
                for id in &batch.matched[base + l] {
                    batch.marks[id.index() * LANE_WIDTH + l] = 0;
                }
            }
            stats.matched += (0..chunk_len)
                .map(|l| batch.matched[base + l].len())
                .sum::<usize>();
            stats.batch_events += active;
            stats.batch_passes += 1;
            base += chunk_len;
        }
        stats
    }

    /// Scans one flat unit's transposed lane region: compares the hit
    /// counters of the chunk's live lanes against the unit's predicate
    /// count eight lanes at a time ([`swar_eq_bytes`]), records
    /// matches (deduplicated per lane through the marks plane), and
    /// restores the region to all-zero.
    ///
    /// `words_used` bounds the scan to `ceil(chunk_len / 8)` words —
    /// lanes past the chunk length never receive increments, so a
    /// narrow batch is not charged for the full [`LANE_WIDTH`] region.
    /// Untouched regions — the common case on a full scan — cost
    /// `words_used` word loads and one branch. Dead slots are safe to
    /// scan: they have no postings, so their lanes stay zero and their
    /// stale `cnt` / `flat_orig` entries are never acted on.
    #[inline]
    fn scan_lane_region(
        &self,
        flat: usize,
        base: usize,
        words_used: usize,
        batch: &mut BatchScratch,
    ) {
        let lane_base = flat * LANE_WIDTH;
        let used = words_used * 8;
        let region = &batch.lanes[lane_base..lane_base + used];
        let mut words = [0u64; LANE_WIDTH / 8];
        for (w, bytes) in region.chunks_exact(8).enumerate() {
            words[w] = u64::from_le_bytes(bytes.try_into().expect("8-byte lane word"));
        }
        if words[..words_used].iter().fold(0, |acc, &w| acc | w) == 0 {
            return;
        }
        let target = self.cnt[flat];
        if target != 0 {
            let orig = self.flat_orig[flat] as usize;
            for (w, &word) in words[..words_used].iter().enumerate() {
                let mut eq = swar_eq_bytes(word, target);
                while eq != 0 {
                    let l = w * 8 + (eq.trailing_zeros() / 8) as usize;
                    eq &= eq - 1;
                    let mark = &mut batch.marks[orig * LANE_WIDTH + l];
                    if *mark == 0 {
                        *mark = 1;
                        batch.matched[base + l].push(SubscriptionId::from_index(orig));
                    }
                }
            }
        }
        batch.lanes[lane_base..lane_base + used].fill(0);
    }

    fn memory_usage(&self) -> MemoryUsage {
        let unsub: usize = self
            .origs
            .iter()
            .flatten()
            .map(|m| m.flats.capacity() * 4 + m.acquired.capacity() * 4)
            .sum::<usize>()
            + self.origs.capacity() * std::mem::size_of::<Option<OrigMeta>>();
        MemoryUsage {
            predicates: self.interner.heap_bytes(),
            phase1_index: self.index.heap_bytes(),
            association: self.assoc.heap_bytes(),
            locations: self.flat_orig.capacity() * 4 + self.free_flats.capacity() * 4,
            trees: 0,
            // Count vector plus the per-matcher hit vector. The hit
            // vector lives in `MatchScratch` since the shared-read
            // redesign, but it is still a per-matcher requirement sized
            // to the flat-slot space, so the paper-faithful phase-2
            // accounting keeps charging it here.
            vectors: self.cnt.capacity() + self.cnt.len(),
            unsub_support: unsub,
            // Per-event scratch is caller-owned now
            // (`MatchScratch::heap_bytes`); the engine holds none.
            scratch: 0,
        }
    }

    /// Number of flat conjunctions currently registered — the "multiple
    /// of the number of original subscriptions" the paper talks about.
    fn flat_count(&self) -> usize {
        self.live_flats
    }
}

/// Returns a mask with `0x80` in every byte of `w` that equals `byte`
/// (little-endian byte order, so bit `8·i + 7` flags byte `i`).
///
/// Exact for *locating* equal bytes, not just detecting one: the add
/// is masked to seven bits per byte, so no carry crosses a byte
/// boundary — unlike the classic `haszero` trick, whose borrow
/// propagation can also flag the byte above a matching byte.
#[inline]
fn swar_eq_bytes(w: u64, byte: u8) -> u64 {
    const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    let x = w ^ (u64::from(byte) * 0x0101_0101_0101_0101);
    !(((x & LO7) + LO7) | x | LO7)
}

macro_rules! counting_engine {
    ($(#[$doc:meta])* $name:ident, $kind:expr, $phase2:ident, $batch:ident) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            tables: CountingTables,
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl $name {
            /// Creates an engine with default configuration.
            pub fn new() -> Self {
                Self::with_config(CountingConfig::default())
            }

            /// Creates an engine with explicit configuration.
            pub fn with_config(config: CountingConfig) -> Self {
                $name {
                    tables: CountingTables::new(config),
                }
            }

            /// Number of registered flat (DNF-transformed)
            /// conjunctions — the engine's true problem size.
            pub fn flat_count(&self) -> usize {
                self.tables.flat_count()
            }

            /// Total entries in the predicate→conjunction association
            /// table — one per predicate per flat conjunction, the
            /// post-transformation multiple the paper's §2.2 predicts.
            pub fn association_postings(&self) -> usize {
                self.tables.assoc.posting_count()
            }
        }

        impl FilterEngine for $name {
            fn kind(&self) -> EngineKind {
                $kind
            }

            fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
                self.tables.subscribe(expr)
            }

            fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
                self.tables.unsubscribe(id)
            }

            fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
                self.tables.phase1(event, out);
            }

            fn phase2(
                &self,
                fulfilled: &FulfilledSet,
                scratch: &mut MatchScratch,
                matched: &mut Vec<SubscriptionId>,
            ) -> MatchStats {
                self.tables.$phase2(fulfilled, scratch, matched)
            }

            fn match_batch(
                &self,
                events: &[Arc<Event>],
                skip: &[bool],
                batch: &mut BatchScratch,
            ) -> MatchStats {
                self.tables.$batch(events, skip, batch)
            }

            fn subscription_count(&self) -> usize {
                self.tables.live_origs
            }

            fn subscription_id_bound(&self) -> usize {
                self.tables.origs.len()
            }

            fn registered_units(&self) -> usize {
                self.tables.flat_count()
            }

            fn unit_slot_bound(&self) -> usize {
                self.tables.cnt.len()
            }

            fn predicate_count(&self) -> usize {
                self.tables.interner.len()
            }

            fn predicate_universe(&self) -> usize {
                self.tables.interner.universe()
            }

            fn memory_usage(&self) -> MemoryUsage {
                self.tables.memory_usage()
            }
        }
    };
}

counting_engine!(
    /// The classic counting algorithm (Yan & García-Molina 1994;
    /// Pereira et al. 2000) over DNF-transformed subscriptions: phase 2
    /// compares the hit counter of **every** registered conjunction
    /// against its predicate count, so matching time grows linearly
    /// with the transformed corpus.
    ///
    /// # Examples
    ///
    /// ```
    /// use boolmatch_core::{CountingEngine, FilterEngine, Matcher};
    /// use boolmatch_expr::Expr;
    /// use boolmatch_types::Event;
    ///
    /// let mut engine = Matcher::new(CountingEngine::new());
    /// let id = engine.subscribe(&Expr::parse("(a = 1 or b = 2) and c = 3")?)?;
    /// // Two conjunctions were registered for one subscription:
    /// assert_eq!(engine.flat_count(), 2);
    /// let ev = Event::builder().attr("b", 2_i64).attr("c", 3_i64).build();
    /// assert_eq!(engine.match_event(&ev).matched, vec![id]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    CountingEngine,
    EngineKind::Counting,
    phase2_counting,
    match_batch_counting
);

counting_engine!(
    /// The paper's improved counting baseline (§3.3): identical tables
    /// to [`CountingEngine`], but phase 2 records candidate
    /// conjunctions while incrementing and compares only those, making
    /// its cost follow the number of fulfilled predicates instead of
    /// the total (transformed) subscription count.
    ///
    /// # Examples
    ///
    /// ```
    /// use boolmatch_core::{CountingVariantEngine, FilterEngine, Matcher};
    /// use boolmatch_expr::Expr;
    /// use boolmatch_types::Event;
    ///
    /// let mut engine = Matcher::new(CountingVariantEngine::new());
    /// let id = engine.subscribe(&Expr::parse("x > 3 and x < 9")?)?;
    /// let ev = Event::builder().attr("x", 5_i64).build();
    /// let result = engine.match_event(&ev);
    /// assert_eq!(result.matched, vec![id]);
    /// // Only the one candidate conjunction was compared:
    /// assert_eq!(result.stats.comparisons, 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    CountingVariantEngine,
    EngineKind::CountingVariant,
    phase2_variant,
    match_batch_variant
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;

    fn engines() -> (Matcher<CountingEngine>, Matcher<CountingVariantEngine>) {
        (
            Matcher::new(CountingEngine::new()),
            Matcher::new(CountingVariantEngine::new()),
        )
    }

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::from_pairs(pairs.iter().map(|(n, v)| (*n, *v)))
    }

    #[test]
    fn fig1_expands_to_nine_conjunctions() {
        let (mut c, mut v) = engines();
        let expr =
            Expr::parse("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)").unwrap();
        c.subscribe(&expr).unwrap();
        v.subscribe(&expr).unwrap();
        assert_eq!(c.flat_count(), 9);
        assert_eq!(v.flat_count(), 9);
        assert_eq!(c.subscription_count(), 1);
    }

    #[test]
    fn both_variants_match_like_direct_evaluation() {
        let exprs = [
            "(a = 1 or b = 2) and c = 3",
            "a = 1 and b = 2",
            "a = 1 or d = 4",
            "not (a = 1) and c = 3",
        ];
        let (mut c, mut v) = engines();
        let parsed: Vec<Expr> = exprs.iter().map(|s| Expr::parse(s).unwrap()).collect();
        for e in &parsed {
            c.subscribe(e).unwrap();
            v.subscribe(e).unwrap();
        }
        let events = [
            ev(&[("a", 1), ("c", 3)]),
            ev(&[("b", 2), ("c", 3)]),
            ev(&[("a", 1), ("b", 2)]),
            ev(&[("a", 2), ("c", 3)]),
            ev(&[("d", 4)]),
            ev(&[]),
        ];
        for event in &events {
            let mut want: Vec<usize> = Vec::new();
            for (i, e) in parsed.iter().enumerate() {
                // Canonical engines evaluate the NNF (complement)
                // semantics; on these events every referenced attribute
                // of a NOT is present, so it agrees with eval_event
                // except for the `not` subscription on events missing
                // `a` — computed explicitly here via NNF.
                let nnf = transform::eliminate_not(e);
                if nnf.eval_event(event) {
                    want.push(i);
                }
            }
            let mut got_c: Vec<usize> = c
                .match_event(event)
                .matched
                .iter()
                .map(|s| s.index())
                .collect();
            let mut got_v: Vec<usize> = v
                .match_event(event)
                .matched
                .iter()
                .map(|s| s.index())
                .collect();
            got_c.sort();
            got_v.sort();
            assert_eq!(got_c, want, "counting on {event}");
            assert_eq!(got_v, want, "variant on {event}");
        }
    }

    #[test]
    fn counting_scans_everything_variant_does_not() {
        let (mut c, mut v) = engines();
        for i in 0..50 {
            let s = format!("(x{i} = 1 or y{i} = 2) and z{i} = 3");
            let e = Expr::parse(&s).unwrap();
            c.subscribe(&e).unwrap();
            v.subscribe(&e).unwrap();
        }
        let event = ev(&[("x0", 1), ("z0", 3)]);
        let rc = c.match_event(&event);
        let rv = v.match_event(&event);
        assert_eq!(rc.matched, rv.matched);
        // Classic scans all 100 flat conjunctions; variant only the
        // candidates (2 conjunctions of subscription 0).
        assert_eq!(rc.stats.comparisons, 100);
        assert_eq!(rv.stats.comparisons, 2);
        assert_eq!(rv.stats.candidates, 2);
        // Both did identical increment work.
        assert_eq!(rc.stats.increments, rv.stats.increments);
    }

    #[test]
    fn redundant_increments_after_transformation() {
        // One subscription, and-of-or-pairs with 3 groups -> 8
        // conjunctions; each fulfilled predicate sits in 4 of them.
        let (mut c, _) = engines();
        c.subscribe(
            &Expr::parse("(a = 1 or a = 2) and (b = 1 or b = 2) and (c = 1 or c = 2)").unwrap(),
        )
        .unwrap();
        assert_eq!(c.flat_count(), 8);
        let r = c.match_event(&ev(&[("a", 1), ("b", 1), ("c", 1)]));
        // 3 fulfilled predicates x 4 conjunctions each = 12 increments —
        // the paper's "redundant computations" (§2.2). The non-canonical
        // engine does 3 association lookups for the same event.
        assert_eq!(r.stats.fulfilled, 3);
        assert_eq!(r.stats.increments, 12);
        assert_eq!(r.matched.len(), 1);
    }

    #[test]
    fn dnf_limit_is_enforced() {
        let mut c = Matcher::new(CountingEngine::with_config(CountingConfig {
            dnf_limit: 4,
            enable_phase1_index: true,
        }));
        // 2^3 = 8 conjunctions > 4.
        let expr =
            Expr::parse("(a = 1 or a = 2) and (b = 1 or b = 2) and (c = 1 or c = 2)").unwrap();
        assert!(matches!(
            c.subscribe(&expr),
            Err(SubscribeError::DnfTooLarge {
                estimate: 8,
                limit: 4
            })
        ));
        // Nothing leaked.
        assert_eq!(c.subscription_count(), 0);
        assert_eq!(c.predicate_count(), 0);
        assert_eq!(c.flat_count(), 0);
    }

    #[test]
    fn wide_conjunct_is_rejected() {
        let mut c = CountingEngine::new();
        let wide = Expr::and(
            (0..300)
                .map(|i| Expr::parse(&format!("a{i} = 1")).unwrap())
                .collect(),
        );
        assert!(matches!(
            c.subscribe(&wide),
            Err(SubscribeError::ConjunctTooWide { width: 300 })
        ));
        assert_eq!(c.predicate_count(), 0);
    }

    #[test]
    fn unsubscribe_cleans_everything_and_reuses_flats() {
        let (mut c, _) = engines();
        let e1 = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        let e2 = Expr::parse("d = 4 and e = 5").unwrap();
        let id1 = c.subscribe(&e1).unwrap();
        let _id2 = c.subscribe(&e2).unwrap();
        assert_eq!(c.flat_count(), 3);

        c.unsubscribe(id1).unwrap();
        assert_eq!(c.flat_count(), 1);
        assert_eq!(c.subscription_count(), 1);
        assert_eq!(c.predicate_count(), 2);
        assert!(c.match_event(&ev(&[("a", 1), ("c", 3)])).matched.is_empty());

        // Freed flat slots are recycled by the next subscribe.
        let vectors_before = c.memory_usage().vectors;
        c.subscribe(&e1).unwrap();
        assert_eq!(c.memory_usage().vectors, vectors_before);

        assert!(matches!(
            c.unsubscribe(id1),
            Err(UnsubscribeError::UnknownSubscription(_))
        ));
    }

    #[test]
    fn duplicated_conjunct_predicates_not_double_counted() {
        // (a=1 or a=1) and b=2 -> conjuncts dedup inside to_dnf; a flat
        // conjunct never counts one predicate twice, so hit == cnt works.
        let (mut c, mut v) = engines();
        let e = Expr::parse("(a = 1 or a = 1) and b = 2").unwrap();
        let ic = c.subscribe(&e).unwrap();
        let iv = v.subscribe(&e).unwrap();
        let event = ev(&[("a", 1), ("b", 2)]);
        assert_eq!(c.match_event(&event).matched, vec![ic]);
        assert_eq!(v.match_event(&event).matched, vec![iv]);
    }

    #[test]
    fn matched_originals_are_deduplicated() {
        // An event fulfilling both or-branches completes 2 conjunctions
        // of the same original subscription; it must be reported once.
        let (mut c, mut v) = engines();
        let e = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        c.subscribe(&e).unwrap();
        v.subscribe(&e).unwrap();
        let event = ev(&[("a", 1), ("b", 2), ("c", 3)]);
        assert_eq!(c.match_event(&event).matched.len(), 1);
        assert_eq!(v.match_event(&event).matched.len(), 1);
    }

    #[test]
    fn memory_usage_buckets_are_populated() {
        let (mut c, _) = engines();
        for i in 0..50 {
            let s = format!("(x{i} = 1 or y{i} = 2) and (z{i} = 3 or w{i} = 4)");
            c.subscribe(&Expr::parse(&s).unwrap()).unwrap();
        }
        let m = c.memory_usage();
        assert!(m.vectors > 0, "hit/cnt vectors");
        assert!(m.association > 0);
        assert!(m.locations > 0);
        assert!(m.unsub_support > 0);
        assert_eq!(m.trees, 0);
        assert!(m.phase2_bytes() < m.total());
    }

    #[test]
    fn phase2_with_synthetic_fulfilled_set_matches_phase1_path() {
        let (mut c, _) = engines();
        let id = c
            .subscribe(&Expr::parse("(a = 1 or b = 2) and c = 3").unwrap())
            .unwrap();
        let event = ev(&[("b", 2), ("c", 3)]);
        let full = c.match_event(&event);
        assert_eq!(full.matched, vec![id]);

        let mut fulfilled = FulfilledSet::new();
        c.phase1(&event, &mut fulfilled);
        let mut matched = Vec::new();
        let stats = c.phase2(&fulfilled, &mut matched);
        assert_eq!(matched, full.matched);
        assert_eq!(stats, full.stats);
    }

    /// Batch and scalar walks must agree per event (as sets) and in
    /// total stats — the lane kernels' core contract.
    fn assert_batch_equals_scalar(engine: &impl FilterEngine, events: &[Arc<Event>]) {
        let mut scratch = MatchScratch::new();
        let mut batch = BatchScratch::new();
        let stats = engine.match_batch(events, &[], &mut batch);
        let mut scalar_total = MatchStats::default();
        for (e, event) in events.iter().enumerate() {
            let scalar = engine.match_event(event, &mut scratch);
            scalar_total = scalar_total + scalar.stats;
            let mut got: Vec<_> = batch.matched(e).to_vec();
            let mut want = scalar.matched.clone();
            got.sort();
            want.sort();
            assert_eq!(got, want, "event {e}");
        }
        assert_eq!(stats.batch_events, events.len());
        let mut stats = stats;
        stats.batch_events = 0;
        stats.batch_passes = 0;
        assert_eq!(stats, scalar_total, "summed stats");
    }

    #[test]
    fn swar_byte_equality_is_exact() {
        // Bytewise reference: 0x80 per equal byte, little-endian.
        fn eq_ref(w: u64, b: u8) -> u64 {
            w.to_le_bytes()
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x == b)
                .map(|(i, _)| 0x80u64 << (i * 8))
                .sum()
        }
        let words = [
            0u64,
            u64::MAX,
            // Borrow-bleed shape: the classic haszero trick flags the
            // 0x01 byte above the 0x00 byte when locating zeros.
            0x0100,
            0x8000_0000_0000_0001,
            0x0102_0304_7f80_ff00,
            0x0101_0101_0101_0101,
            0x7f7f_7f7f_7f7f_7f7f,
        ];
        for &w in &words {
            for b in [0u8, 1, 2, 0x7f, 0x80, 0xff] {
                assert_eq!(swar_eq_bytes(w, b), eq_ref(w, b), "w={w:#018x} b={b:#04x}");
            }
        }
    }

    #[test]
    fn batch_matches_like_scalar_for_both_engines() {
        let (mut c, mut v) = engines();
        for i in 0..40 {
            let s = format!("(g{} = 1 or h{} = 2) and k{} = 3", i % 7, i % 5, i % 3);
            c.subscribe(&Expr::parse(&s).unwrap()).unwrap();
            v.subscribe(&Expr::parse(&s).unwrap()).unwrap();
        }
        for n in [1usize, 2, 5, 64, 130] {
            let events: Vec<Arc<Event>> = (0..n)
                .map(|i| {
                    Arc::new(ev(&[
                        ("g0", if i % 2 == 0 { 1 } else { 9 }),
                        ("h1", 2),
                        ("k0", 3),
                        (if i % 3 == 0 { "k1" } else { "k2" }, 3),
                    ]))
                })
                .collect();
            assert_batch_equals_scalar(c.engine(), &events);
            assert_batch_equals_scalar(v.engine(), &events);
        }
    }

    #[test]
    fn batch_amortizes_table_passes() {
        let (mut c, _) = engines();
        c.subscribe(&Expr::parse("a = 1 and b = 2").unwrap())
            .unwrap();
        let events: Vec<Arc<Event>> = (0..64)
            .map(|_| Arc::new(ev(&[("a", 1), ("b", 2)])))
            .collect();
        let mut batch = BatchScratch::new();
        let stats = c.engine().match_batch(&events, &[], &mut batch);
        // 64 events, one lane chunk: one association-table pass.
        assert_eq!(stats.batch_events, 64);
        assert_eq!(stats.batch_passes, 1);
        // B = 1 runs the scalar path: one pass per event.
        let one = c.engine().match_batch(&events[..1], &[], &mut batch);
        assert_eq!(one.batch_events, 1);
        assert_eq!(one.batch_passes, 1);
    }

    #[test]
    fn batch_skip_mask_excludes_events() {
        let (mut c, mut v) = engines();
        let e = Expr::parse("a = 1 and b = 2").unwrap();
        c.subscribe(&e).unwrap();
        v.subscribe(&e).unwrap();
        let events: Vec<Arc<Event>> = (0..6)
            .map(|_| Arc::new(ev(&[("a", 1), ("b", 2)])))
            .collect();
        let skip = [false, true, false, true, true, false];
        for engine in [
            c.engine() as &dyn FilterEngine,
            v.engine() as &dyn FilterEngine,
        ] {
            let mut batch = BatchScratch::new();
            let stats = engine.match_batch(&events, &skip, &mut batch);
            assert_eq!(stats.batch_events, 3);
            assert_eq!(stats.matched, 3);
            for (e, &skipped) in skip.iter().enumerate() {
                assert_eq!(batch.matched(e).is_empty(), skipped, "event {e}");
            }
        }
    }

    #[test]
    fn batch_dedups_matched_originals_per_event() {
        // Both or-branches complete for the same original — each event
        // must report it once, and lanes must not bleed into each other.
        let (mut c, mut v) = engines();
        let e = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        c.subscribe(&e).unwrap();
        v.subscribe(&e).unwrap();
        let events: Vec<Arc<Event>> = (0..10)
            .map(|i| {
                Arc::new(if i % 2 == 0 {
                    ev(&[("a", 1), ("b", 2), ("c", 3)])
                } else {
                    ev(&[("a", 1)])
                })
            })
            .collect();
        for engine in [
            c.engine() as &dyn FilterEngine,
            v.engine() as &dyn FilterEngine,
        ] {
            let mut batch = BatchScratch::new();
            engine.match_batch(&events, &[], &mut batch);
            for e in 0..events.len() {
                assert_eq!(batch.matched(e).len(), usize::from(e % 2 == 0), "event {e}");
            }
        }
    }

    #[test]
    fn hit_vector_is_clean_between_events() {
        let (mut c, mut v) = engines();
        let e = Expr::parse("a = 1 and b = 2").unwrap();
        c.subscribe(&e).unwrap();
        v.subscribe(&e).unwrap();
        // Partially-fulfilling event leaves hit = 1 unless cleared.
        let partial = ev(&[("a", 1)]);
        assert!(c.match_event(&partial).matched.is_empty());
        assert!(v.match_event(&partial).matched.is_empty());
        // A second partial event must not complete the counter.
        let other = ev(&[("b", 2)]);
        assert!(c.match_event(&other).matched.is_empty());
        assert!(v.match_event(&other).matched.is_empty());
        // Sanity: the full event still matches.
        assert_eq!(c.match_event(&ev(&[("a", 1), ("b", 2)])).matched.len(), 1);
    }
}
