//! Identifier newtypes.

use std::fmt;

/// Identifier of an interned predicate — `id(p)` in the paper.
///
/// Dense (`0..universe`) within one engine; slots are recycled when a
/// predicate's reference count drops to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateId(u32);

impl PredicateId {
    /// Builds an id from a raw dense index.
    pub fn from_index(index: usize) -> PredicateId {
        PredicateId(u32::try_from(index).expect("more than u32::MAX predicates"))
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw value, as stored in encoded subscription trees (4 bytes,
    /// paper §3.3).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its raw value.
    pub fn from_raw(raw: u32) -> PredicateId {
        PredicateId(raw)
    }
}

impl fmt::Display for PredicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a registered subscription — `id(s)` in the paper.
///
/// Sequentially assigned by an engine and never reused, so a stale id
/// held after unsubscription can be detected instead of silently
/// aliasing a new subscription.
///
/// # Generation tagging
///
/// The 64-bit value is split into a 32-bit **slot** (low half) and a
/// 32-bit **generation** (high half). Flat engines and arrival-order
/// sharded directories only ever issue generation 0, so the id *is* the
/// dense index (`from_index`/`index` round-trip unchanged). A directory
/// running in recycled-ids mode reissues a retired slot under the
/// slot's next generation: the new id compares, hashes and displays
/// differently from every id the slot carried before, which is what
/// makes bounded id recycling ABA-safe — a stale handle's late
/// unsubscribe can no longer alias the slot's new owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(u64);

/// Bits of a [`SubscriptionId`] holding the slot index; the generation
/// occupies the bits above.
const SLOT_BITS: u32 = 32;

impl SubscriptionId {
    /// Builds an id from a raw dense index (generation 0).
    pub fn from_index(index: usize) -> SubscriptionId {
        SubscriptionId(index as u64)
    }

    /// The raw dense index.
    ///
    /// Meaningful as an array index only for generation-0 ids (flat
    /// engines, arrival-order directories); a generation-tagged id's
    /// raw value is the full packed word. Use
    /// [`SubscriptionId::slot`] when indexing slot tables.
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("subscription id exceeds usize")
    }

    /// Packs a generation-tagged id: `slot` in the low 32 bits, the
    /// issuing `generation` above.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not fit the 32-bit slot field.
    pub fn from_parts(generation: u32, slot: usize) -> SubscriptionId {
        let slot = u32::try_from(slot).expect("subscription slot fits u32");
        SubscriptionId(u64::from(generation) << SLOT_BITS | u64::from(slot))
    }

    /// The slot index — the half of the id that addresses a directory
    /// table entry. For generation-0 ids this equals
    /// [`SubscriptionId::index`].
    pub fn slot(self) -> usize {
        (self.0 & u64::from(u32::MAX)) as usize
    }

    /// The generation the slot was under when this id was issued; 0 for
    /// every flat-engine and arrival-order id.
    pub fn generation(self) -> u32 {
        (self.0 >> SLOT_BITS) as u32
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "s{}", self.0)
        } else {
            write!(f, "s{}.g{}", self.slot(), self.generation())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_id_round_trips() {
        let id = PredicateId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(PredicateId::from_raw(42), id);
        assert_eq!(id.to_string(), "p42");
    }

    #[test]
    fn subscription_id_round_trips() {
        let id = SubscriptionId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "s7");
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 0);
    }

    #[test]
    fn generation_tagging_packs_and_unpacks() {
        let id = SubscriptionId::from_parts(3, 7);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 3);
        assert_eq!(id.to_string(), "s7.g3");
        // Generation 0 is bit-identical to the plain dense index.
        assert_eq!(
            SubscriptionId::from_parts(0, 7),
            SubscriptionId::from_index(7)
        );
        // Same slot, different generation: distinct ids — the ABA guard.
        assert_ne!(
            SubscriptionId::from_parts(1, 7),
            SubscriptionId::from_index(7)
        );
        assert!(
            SubscriptionId::from_parts(1, 0) > SubscriptionId::from_index(u32::MAX as usize - 1)
        );
    }

    #[test]
    fn ids_are_ordered() {
        assert!(PredicateId::from_index(1) < PredicateId::from_index(2));
        assert!(SubscriptionId::from_index(1) < SubscriptionId::from_index(2));
    }
}
