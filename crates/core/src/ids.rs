//! Identifier newtypes.

use std::fmt;

/// Identifier of an interned predicate — `id(p)` in the paper.
///
/// Dense (`0..universe`) within one engine; slots are recycled when a
/// predicate's reference count drops to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateId(u32);

impl PredicateId {
    /// Builds an id from a raw dense index.
    pub fn from_index(index: usize) -> PredicateId {
        PredicateId(u32::try_from(index).expect("more than u32::MAX predicates"))
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw value, as stored in encoded subscription trees (4 bytes,
    /// paper §3.3).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its raw value.
    pub fn from_raw(raw: u32) -> PredicateId {
        PredicateId(raw)
    }
}

impl fmt::Display for PredicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a registered subscription — `id(s)` in the paper.
///
/// Sequentially assigned by an engine and never reused, so a stale id
/// held after unsubscription can be detected instead of silently
/// aliasing a new subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(u64);

impl SubscriptionId {
    /// Builds an id from a raw dense index.
    pub fn from_index(index: usize) -> SubscriptionId {
        SubscriptionId(index as u64)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("subscription id exceeds usize")
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_id_round_trips() {
        let id = PredicateId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(PredicateId::from_raw(42), id);
        assert_eq!(id.to_string(), "p42");
    }

    #[test]
    fn subscription_id_round_trips() {
        let id = SubscriptionId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "s7");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(PredicateId::from_index(1) < PredicateId::from_index(2));
        assert!(SubscriptionId::from_index(1) < SubscriptionId::from_index(2));
    }
}
