//! The non-canonical filtering engine — the paper's contribution (§3).

use boolmatch_expr::{transform, Expr};
use boolmatch_index::PredicateIndex;
use boolmatch_types::Event;

use std::sync::Arc;

use crate::arena::{Loc, TreeArena};
use crate::assoc::AssocTable;
use crate::encode::{self, IdExpr};
use crate::engine::{EngineKind, FilterEngine, SubscribeError, UnsubscribeError};
use crate::eval::eval_iterative_with;
use crate::scratch::LANE_WIDTH;
use crate::{
    BatchScratch, FulfilledSet, MatchScratch, MatchStats, MemoryUsage, PredicateId,
    PredicateInterner, SubscriptionId,
};

/// Configuration of a [`NonCanonicalEngine`].
#[derive(Debug, Clone)]
pub struct NonCanonicalConfig {
    /// Maintain the phase-1 predicate index. Disable only for phase-2
    /// isolation experiments that synthesize fulfilled sets directly
    /// (the paper's Fig. 3 setup); [`FilterEngine::phase1`] then finds
    /// nothing.
    pub enable_phase1_index: bool,
    /// Reorder subscription trees cheapest-child-first before encoding
    /// ([`boolmatch_expr::transform::reorder`]) so short-circuit
    /// evaluation refutes/confirms nodes earlier — the optimisation the
    /// paper proposes but defers (§3.2). Off by default to match the
    /// paper's measured configuration; the `ablation_reorder` bench
    /// quantifies it.
    pub reorder_trees: bool,
}

impl Default for NonCanonicalConfig {
    fn default() -> Self {
        NonCanonicalConfig {
            enable_phase1_index: true,
            reorder_trees: false,
        }
    }
}

/// The paper's matching engine: subscriptions are stored **as their
/// original Boolean expressions** — no canonical transformation — and
/// matched in two phases over four data structures (paper Fig. 2):
/// one-dimensional predicate indexes, the predicate→subscription
/// association table, the subscription location table, and the
/// byte-encoded subscription trees themselves.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{FilterEngine, Matcher, NonCanonicalEngine};
/// use boolmatch_expr::Expr;
/// use boolmatch_types::Event;
///
/// let mut engine = Matcher::new(NonCanonicalEngine::new());
/// // Arbitrary Boolean structure, registered without DNF expansion:
/// let id = engine.subscribe(&Expr::parse(
///     "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)",
/// )?)?;
/// let hit = Event::builder().attr("a", 12_i64).attr("c", 30_i64).build();
/// assert_eq!(engine.match_event(&hit).matched, vec![id]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NonCanonicalEngine {
    config: NonCanonicalConfig,
    interner: PredicateInterner,
    index: PredicateIndex<PredicateId>,
    /// Predicate → subscriptions containing it (dense u32 sub indexes).
    assoc: AssocTable<u32>,
    /// Subscription location table: dense sub index → tree location.
    /// The [`Loc::empty`] sentinel marks unsubscribed ids (never
    /// reused); a plain `Loc` per slot is 8 bytes where `Option<Loc>`
    /// would be 12 — this table exists per live subscription.
    locations: Vec<Loc>,
    arena: TreeArena,
    live_subs: usize,
}

impl Default for NonCanonicalEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl NonCanonicalEngine {
    /// Creates an engine with default configuration.
    pub fn new() -> Self {
        Self::with_config(NonCanonicalConfig::default())
    }

    /// Creates an engine with explicit configuration.
    pub fn with_config(config: NonCanonicalConfig) -> Self {
        NonCanonicalEngine {
            config,
            interner: PredicateInterner::new(),
            index: PredicateIndex::new(),
            assoc: AssocTable::new(),
            locations: Vec::new(),
            arena: TreeArena::new(),
            live_subs: 0,
        }
    }

    /// Compiles a compacted expression into an [`IdExpr`], interning
    /// every leaf. Records acquisitions so a failed subscribe can roll
    /// back.
    fn compile(&mut self, expr: &Expr, acquired: &mut Vec<PredicateId>) -> IdExpr {
        match expr {
            Expr::Pred(p) => {
                let (id, fresh) = self.interner.intern(p);
                if fresh && self.config.enable_phase1_index {
                    self.index.insert(id, p);
                }
                acquired.push(id);
                IdExpr::Pred(id)
            }
            Expr::And(cs) => IdExpr::And(cs.iter().map(|c| self.compile(c, acquired)).collect()),
            Expr::Or(cs) => IdExpr::Or(cs.iter().map(|c| self.compile(c, acquired)).collect()),
            Expr::Not(c) => IdExpr::Not(Box::new(self.compile(c, acquired))),
        }
    }

    fn release_predicate(&mut self, id: PredicateId) {
        if self.interner.release(id) && self.config.enable_phase1_index {
            // The slot still holds the predicate until reused.
            self.index.remove(id, self.interner.resolve(id));
        }
    }

    /// Decoded view of a registered subscription — the inverse of
    /// registration, useful for debugging and covering tools.
    ///
    /// # Errors
    ///
    /// Returns [`UnsubscribeError::UnknownSubscription`] for unknown
    /// ids.
    pub fn subscription_tree(&self, id: SubscriptionId) -> Result<IdExpr, UnsubscribeError> {
        let loc = self
            .locations
            .get(id.index())
            .copied()
            .filter(|l| !l.is_empty())
            .ok_or(UnsubscribeError::UnknownSubscription(id))?;
        Ok(encode::decode(self.arena.get(loc)).expect("engine-encoded trees are well-formed"))
    }

    /// Fragmentation of the tree arena (0.0 = none), exposed for the
    /// churn tests and operational metrics.
    pub fn arena_fragmentation(&self) -> f64 {
        self.arena.fragmentation()
    }

    /// Total entries in the predicate→subscription association table —
    /// one per distinct predicate per subscription.
    pub fn association_postings(&self) -> usize {
        self.assoc.posting_count()
    }
}

impl FilterEngine for NonCanonicalEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::NonCanonical
    }

    fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        // "Binary operators are treated as n-ary ones due to compacting
        // subscription trees" (§3.1).
        let mut compacted = transform::compact(expr);
        if self.config.reorder_trees {
            compacted = transform::reorder(&compacted);
        }
        let mut acquired = Vec::with_capacity(compacted.predicate_count());
        let tree = self.compile(&compacted, &mut acquired);
        let bytes = match encode::encode(&tree) {
            Ok(b) if b.len() <= crate::arena::BLOCK_SIZE => b,
            Ok(b) => {
                for id in acquired {
                    self.release_predicate(id);
                }
                return Err(crate::EncodeError::SubtreeTooWide { width: b.len() }.into());
            }
            Err(e) => {
                for id in acquired {
                    self.release_predicate(id);
                }
                return Err(e.into());
            }
        };

        let sub_index = self.locations.len();
        let sub_u32 = u32::try_from(sub_index).expect("more than u32::MAX subscriptions");
        let loc = self.arena.insert(&bytes);
        self.locations.push(loc);
        self.live_subs += 1;

        // One association entry per *distinct* predicate of the
        // subscription (a predicate occurring twice in the tree must
        // not make the subscription a candidate twice).
        acquired.sort_unstable();
        acquired.dedup();
        for pid in acquired {
            self.assoc.add(pid, sub_u32);
        }
        Ok(SubscriptionId::from_index(sub_index))
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
        let slot = self
            .locations
            .get_mut(id.index())
            .ok_or(UnsubscribeError::UnknownSubscription(id))?;
        if slot.is_empty() {
            return Err(UnsubscribeError::UnknownSubscription(id));
        }
        let loc = std::mem::replace(slot, Loc::empty());

        // The tree itself is the record of which predicates to release —
        // this is why the paper stores subscriptions explicitly (§3.2,
        // footnote 1).
        let mut leaves = Vec::new();
        encode::for_each_encoded_leaf(self.arena.get(loc), &mut |pid| leaves.push(pid));
        self.arena.remove(loc);

        let sub_u32 = u32::try_from(id.index()).expect("issued ids fit u32");
        let mut unique = leaves.clone();
        unique.sort_unstable();
        unique.dedup();
        for pid in unique {
            let removed = self.assoc.remove(pid, sub_u32);
            debug_assert!(removed, "association entry missing for {pid}");
        }
        for pid in leaves {
            self.release_predicate(pid);
        }
        self.live_subs -= 1;
        Ok(())
    }

    fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
        out.begin(self.interner.universe());
        self.index.for_each_match(event, |id| out.insert(id));
    }

    fn phase2(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        matched.clear();
        let mut stats = MatchStats {
            fulfilled: fulfilled.len(),
            ..MatchStats::default()
        };

        // Candidate collection with generation-stamped deduplication,
        // in the caller's scratch.
        let gen = scratch.begin_stamps(self.locations.len());

        let mut candidates = std::mem::take(&mut scratch.candidates);
        candidates.clear();
        for &pid in fulfilled.ids() {
            for &sub in self.assoc.get(pid) {
                let stamp = &mut scratch.stamps[sub as usize];
                if *stamp != gen {
                    *stamp = gen;
                    candidates.push(sub);
                }
            }
        }
        stats.candidates = candidates.len();

        // Evaluate each candidate's Boolean expression once; the
        // variable values are exactly the fulfilled set (paper §3.2).
        let mut eval_stack = std::mem::take(&mut scratch.eval_stack);
        for &sub in &candidates {
            let loc = self.locations[sub as usize];
            debug_assert!(
                !loc.is_empty(),
                "association lists only reference live subscriptions"
            );
            stats.evaluations += 1;
            if eval_iterative_with(self.arena.get(loc), fulfilled, &mut eval_stack) {
                matched.push(SubscriptionId::from_index(sub as usize));
            }
        }
        scratch.eval_stack = eval_stack;
        scratch.candidates = candidates;
        stats.matched = matched.len();
        stats
    }

    /// Batch kernel: events are processed in chunks of up to
    /// [`LANE_WIDTH`] lanes. Per chunk the predicate→subscription
    /// association table is walked **once** — a stamped union of the
    /// lanes' fulfilled predicates carries a lane bitmask per distinct
    /// predicate, so each association posting is read once and fans out
    /// to every lane fulfilling the predicate. Candidate trees are then
    /// evaluated per lane against that lane's own fulfilled set, exactly
    /// as in the scalar phase 2. Chunks with a single live event
    /// delegate to the scalar path.
    fn match_batch(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        batch: &mut BatchScratch,
    ) -> MatchStats {
        debug_assert!(
            skip.is_empty() || skip.len() == events.len(),
            "skip mask must be empty or one flag per event"
        );
        batch.begin_batch(events.len());
        batch.ensure_chunk_buffers();
        batch.ensure_marks(self.locations.len());
        let mut stats = MatchStats::default();

        let mut base = 0;
        while base < events.len() {
            let chunk_len = LANE_WIDTH.min(events.len() - base);
            let active = (0..chunk_len)
                .filter(|&l| !skip.get(base + l).copied().unwrap_or(false))
                .count();
            if active == 0 {
                base += chunk_len;
                continue;
            }
            if active == 1 {
                let l = (0..chunk_len)
                    .find(|&l| !skip.get(base + l).copied().unwrap_or(false))
                    .expect("active == 1 guarantees a live lane");
                let e = base + l;
                let mut fulfilled = std::mem::take(&mut batch.scalar.fulfilled);
                self.phase1(&events[e], &mut fulfilled);
                let mut out = std::mem::take(&mut batch.matched[e]);
                let s = self.phase2(&fulfilled, &mut batch.scalar, &mut out);
                batch.scalar.fulfilled = fulfilled;
                batch.matched[e] = out;
                stats = stats + s;
                stats.batch_events += 1;
                stats.batch_passes += 1;
                base += chunk_len;
                continue;
            }

            // Phase 1 per live lane + stamped union with lane masks.
            let gen = batch.begin_union(self.interner.universe());
            for l in 0..chunk_len {
                if skip.get(base + l).copied().unwrap_or(false) {
                    continue;
                }
                self.phase1(&events[base + l], &mut batch.fulfilled[l]);
                stats.fulfilled += batch.fulfilled[l].len();
                for &pid in batch.fulfilled[l].ids() {
                    let p = pid.index();
                    if batch.pred_stamps[p] != gen {
                        batch.pred_stamps[p] = gen;
                        batch.pred_rows[p] = batch.union_ids.len() as u32;
                        batch.union_ids.push(pid.raw());
                        batch.union_mask.push(0);
                    }
                    batch.union_mask[batch.pred_rows[p] as usize] |= 1 << l;
                }
            }

            // One association pass for the chunk: each posting fans out
            // to its mask's lanes, deduplicating candidates per lane
            // through the mark plane.
            for (row, &raw) in batch.union_ids.iter().enumerate() {
                let mask = batch.union_mask[row];
                for &sub in self.assoc.get(PredicateId::from_raw(raw)) {
                    let mark_base = sub as usize * LANE_WIDTH;
                    let mut m = mask;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let mark = &mut batch.marks[mark_base + l];
                        if *mark == 0 {
                            *mark = 1;
                            batch.candidates[l].push(sub);
                        }
                    }
                }
            }

            // Per-lane evaluation against that lane's fulfilled set; the
            // marks are restored through the candidate lists.
            let mut eval_stack = std::mem::take(&mut batch.scalar.eval_stack);
            for l in 0..chunk_len {
                let mut cands = std::mem::take(&mut batch.candidates[l]);
                stats.candidates += cands.len();
                for &sub in &cands {
                    batch.marks[sub as usize * LANE_WIDTH + l] = 0;
                    let loc = self.locations[sub as usize];
                    debug_assert!(
                        !loc.is_empty(),
                        "association lists only reference live subscriptions"
                    );
                    stats.evaluations += 1;
                    if eval_iterative_with(
                        self.arena.get(loc),
                        &batch.fulfilled[l],
                        &mut eval_stack,
                    ) {
                        batch.matched[base + l].push(SubscriptionId::from_index(sub as usize));
                    }
                }
                cands.clear();
                batch.candidates[l] = cands;
            }
            batch.scalar.eval_stack = eval_stack;

            stats.matched += (0..chunk_len)
                .map(|l| batch.matched[base + l].len())
                .sum::<usize>();
            stats.batch_events += active;
            stats.batch_passes += 1;
            base += chunk_len;
        }
        stats
    }

    fn subscription_count(&self) -> usize {
        self.live_subs
    }

    fn subscription_id_bound(&self) -> usize {
        self.locations.len()
    }

    fn predicate_count(&self) -> usize {
        self.interner.len()
    }

    fn predicate_universe(&self) -> usize {
        self.interner.universe()
    }

    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage {
            predicates: self.interner.heap_bytes(),
            phase1_index: self.index.heap_bytes(),
            association: self.assoc.heap_bytes(),
            locations: self.locations.capacity() * std::mem::size_of::<Loc>(),
            trees: self.arena.heap_bytes(),
            vectors: 0,
            unsub_support: 0,
            // Per-event scratch is caller-owned now
            // (`MatchScratch::heap_bytes`); the engine holds none.
            scratch: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;

    fn engine_with(subs: &[&str]) -> (Matcher<NonCanonicalEngine>, Vec<SubscriptionId>) {
        let mut e = Matcher::new(NonCanonicalEngine::new());
        let ids = subs
            .iter()
            .map(|s| e.subscribe(&Expr::parse(s).unwrap()).unwrap())
            .collect();
        (e, ids)
    }

    #[test]
    fn fig1_subscription_matches() {
        let (mut e, ids) =
            engine_with(&["(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"]);
        let hit = Event::builder().attr("a", 12_i64).attr("c", 30_i64).build();
        assert_eq!(e.match_event(&hit).matched, vec![ids[0]]);
        let miss = Event::builder().attr("a", 7_i64).attr("c", 30_i64).build();
        assert!(e.match_event(&miss).matched.is_empty());
    }

    #[test]
    fn multiple_subscriptions_and_stats() {
        let (mut e, ids) = engine_with(&[
            "price > 100 and volume > 10",
            "price > 100 or volume > 10",
            "symbol = \"IBM\"",
        ]);
        let ev = Event::builder().attr("price", 150_i64).build();
        let result = e.match_event(&ev);
        assert_eq!(result.matched, vec![ids[1]]);
        // price > 100 fulfilled -> subs 0 and 1 are candidates
        assert_eq!(result.stats.fulfilled, 1);
        assert_eq!(result.stats.candidates, 2);
        assert_eq!(result.stats.evaluations, 2);
        assert_eq!(result.stats.matched, 1);
    }

    #[test]
    fn shared_predicates_are_interned_once() {
        let (e, _) = engine_with(&["a = 1 and b = 2", "a = 1 and c = 3", "a = 1"]);
        // a=1 shared by three subscriptions: 3 distinct predicates
        // total (a=1, b=2, c=3).
        assert_eq!(e.predicate_count(), 3);
    }

    #[test]
    fn duplicate_predicate_in_one_subscription() {
        // a=1 occurs twice; candidate collection must not double-count
        // and refcounts must balance on unsubscribe.
        let (mut e, ids) = engine_with(&["a = 1 or (a = 1 and b = 2)"]);
        let ev = Event::builder().attr("a", 1_i64).build();
        let r = e.match_event(&ev);
        assert_eq!(r.matched, vec![ids[0]]);
        assert_eq!(r.stats.candidates, 1);
        e.unsubscribe(ids[0]).unwrap();
        assert_eq!(e.predicate_count(), 0);
        assert_eq!(e.subscription_count(), 0);
    }

    #[test]
    fn not_semantics_full_negation() {
        let (mut e, ids) = engine_with(&["not (a = 1) and b = 2"]);
        // b=2 present, a=3 (so a=1 false): matches.
        let ev = Event::builder().attr("a", 3_i64).attr("b", 2_i64).build();
        assert_eq!(e.match_event(&ev).matched, vec![ids[0]]);
        // a missing entirely: NOT is still true (full negation).
        let ev = Event::builder().attr("b", 2_i64).build();
        assert_eq!(e.match_event(&ev).matched, vec![ids[0]]);
        // a=1: no match.
        let ev = Event::builder().attr("a", 1_i64).attr("b", 2_i64).build();
        assert!(e.match_event(&ev).matched.is_empty());
    }

    #[test]
    fn unsubscribe_removes_matches_and_frees() {
        let (mut e, ids) = engine_with(&["a = 1", "a = 1 or b = 2"]);
        let ev = Event::builder().attr("a", 1_i64).build();
        assert_eq!(e.match_event(&ev).matched.len(), 2);

        e.unsubscribe(ids[0]).unwrap();
        assert_eq!(e.match_event(&ev).matched, vec![ids[1]]);
        assert_eq!(e.subscription_count(), 1);
        // a=1 still referenced by sub 1; b=2 still live.
        assert_eq!(e.predicate_count(), 2);

        e.unsubscribe(ids[1]).unwrap();
        assert!(e.match_event(&ev).matched.is_empty());
        assert_eq!(e.predicate_count(), 0);
    }

    #[test]
    fn unsubscribe_unknown_or_twice_errors() {
        let (mut e, ids) = engine_with(&["a = 1"]);
        e.unsubscribe(ids[0]).unwrap();
        assert!(matches!(
            e.unsubscribe(ids[0]),
            Err(UnsubscribeError::UnknownSubscription(_))
        ));
        assert!(matches!(
            e.unsubscribe(SubscriptionId::from_index(999)),
            Err(UnsubscribeError::UnknownSubscription(_))
        ));
    }

    #[test]
    fn ids_are_not_reused_after_unsubscribe() {
        let (mut e, ids) = engine_with(&["a = 1"]);
        e.unsubscribe(ids[0]).unwrap();
        let new_id = e.subscribe(&Expr::parse("b = 2").unwrap()).unwrap();
        assert_ne!(new_id, ids[0]);
    }

    #[test]
    fn arena_space_is_reused_after_churn() {
        let mut e = Matcher::new(NonCanonicalEngine::new());
        let expr = Expr::parse("(a = 1 or b = 2) and (c = 3 or d = 4)").unwrap();
        let mut ids = Vec::new();
        for _ in 0..100 {
            ids.push(e.subscribe(&expr).unwrap());
        }
        for id in ids.drain(..) {
            e.unsubscribe(id).unwrap();
        }
        for _ in 0..100 {
            ids.push(e.subscribe(&expr).unwrap());
        }
        assert!(
            e.arena_fragmentation() < 0.01,
            "fragmentation {} after same-shape churn",
            e.arena_fragmentation()
        );
    }

    #[test]
    fn subscription_tree_round_trip() {
        let (e, ids) = engine_with(&["(a = 1 or b = 2) and c = 3"]);
        let tree = e.subscription_tree(ids[0]).unwrap();
        assert_eq!(tree.leaf_count(), 3);
        assert!(matches!(tree, IdExpr::And(_)));
    }

    #[test]
    fn phase_separation_agrees_with_match_event() {
        let (mut e, _) =
            engine_with(&["a > 5 and b < 3", "a > 5 or c = 1", "not (a > 5) and c = 1"]);
        let ev = Event::builder().attr("a", 10_i64).attr("c", 1_i64).build();
        let full = e.match_event(&ev);

        let mut fulfilled = FulfilledSet::new();
        e.phase1(&ev, &mut fulfilled);
        let mut matched = Vec::new();
        let stats = e.phase2(&fulfilled, &mut matched);
        assert_eq!(matched, full.matched);
        assert_eq!(stats, full.stats);
    }

    #[test]
    fn reordered_engine_matches_identically() {
        let exprs = [
            "(a = 1 or b = 2 or c = 3) and d = 4",
            "x = 9 or (y = 8 and (z = 7 or w = 6))",
            "not (p = 1 and (q = 2 or r = 3))",
        ];
        let mut plain = Matcher::new(NonCanonicalEngine::new());
        let mut reordered = Matcher::new(NonCanonicalEngine::with_config(NonCanonicalConfig {
            reorder_trees: true,
            ..NonCanonicalConfig::default()
        }));
        for text in exprs {
            let e = Expr::parse(text).unwrap();
            plain.subscribe(&e).unwrap();
            reordered.subscribe(&e).unwrap();
        }
        // Reordering permutes leaves, so interning order (and therefore
        // predicate ids) may differ — compare via full events.
        for (a, d, x, p) in [(1i64, 4i64, 9i64, 0i64), (0, 4, 0, 1), (1, 0, 0, 9)] {
            let ev = Event::builder()
                .attr("a", a)
                .attr("d", d)
                .attr("x", x)
                .attr("p", p)
                .attr("q", 2_i64)
                .build();
            let mut lhs = plain.match_event(&ev).matched;
            let mut rhs = reordered.match_event(&ev).matched;
            lhs.sort();
            rhs.sort();
            assert_eq!(lhs, rhs, "on {ev}");
        }
        // The reordered tree puts the cheap leaf first.
        let tree = reordered
            .subscription_tree(SubscriptionId::from_index(0))
            .unwrap();
        match tree {
            IdExpr::And(cs) => assert!(matches!(cs[0], IdExpr::Pred(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn phase2_with_synthetic_fulfilled_set() {
        // The Fig. 3 setup: no phase-1 index, fulfilled ids synthesized.
        let mut e = Matcher::new(NonCanonicalEngine::with_config(NonCanonicalConfig {
            enable_phase1_index: false,
            ..NonCanonicalConfig::default()
        }));
        let id = e
            .subscribe(&Expr::parse("(a = 1 or b = 2) and c = 3").unwrap())
            .unwrap();
        // Predicates were interned in syntactic order: a=1 -> p0,
        // b=2 -> p1, c=3 -> p2.
        let set = FulfilledSet::from_ids(
            [PredicateId::from_index(1), PredicateId::from_index(2)],
            e.predicate_universe(),
        );
        let mut matched = Vec::new();
        e.phase2(&set, &mut matched);
        assert_eq!(matched, vec![id]);
        // And phase 1 finds nothing because indexing is disabled.
        let ev = Event::builder().attr("a", 1_i64).attr("c", 3_i64).build();
        assert!(e.match_event(&ev).matched.is_empty());
    }

    #[test]
    fn batch_matches_like_scalar() {
        let mut e = NonCanonicalEngine::new();
        for i in 0..30 {
            let s = format!(
                "(a{} > 5 or b{} = 2) and not (c{} = 9)",
                i % 6,
                i % 4,
                i % 3
            );
            e.subscribe(&Expr::parse(&s).unwrap()).unwrap();
        }
        for n in [1usize, 2, 7, 64, 150] {
            let events: Vec<Arc<Event>> = (0..n)
                .map(|i| {
                    Arc::new(
                        Event::builder()
                            .attr("a0", if i % 2 == 0 { 10_i64 } else { 1 })
                            .attr("b1", 2_i64)
                            .attr("c0", if i % 5 == 0 { 9_i64 } else { 0 })
                            .build(),
                    )
                })
                .collect();
            let mut scratch = MatchScratch::new();
            let mut batch = BatchScratch::new();
            let stats = e.match_batch(&events, &[], &mut batch);
            let mut scalar_total = MatchStats::default();
            for (i, event) in events.iter().enumerate() {
                let scalar = e.match_event(event, &mut scratch);
                scalar_total = scalar_total + scalar.stats;
                let mut got = batch.matched(i).to_vec();
                let mut want = scalar.matched.clone();
                got.sort();
                want.sort();
                assert_eq!(got, want, "event {i} of batch {n}");
            }
            assert_eq!(stats.batch_events, n);
            let mut stats = stats;
            stats.batch_events = 0;
            stats.batch_passes = 0;
            assert_eq!(stats, scalar_total, "summed stats for batch {n}");
        }
    }

    #[test]
    fn batch_skip_mask_and_candidate_dedup() {
        // A predicate occurring in several fulfilled branches must make
        // the subscription one candidate per lane, and skipped lanes
        // contribute nothing.
        let (e, ids) = engine_with(&["a = 1 or (a = 1 and b = 2)", "b = 2"]);
        let events: Vec<Arc<Event>> = (0..4)
            .map(|_| Arc::new(Event::builder().attr("a", 1_i64).attr("b", 2_i64).build()))
            .collect();
        let mut batch = BatchScratch::new();
        let stats = e
            .engine()
            .match_batch(&events, &[false, true, false, true], &mut batch);
        assert_eq!(stats.batch_events, 2);
        assert_eq!(stats.candidates, 4); // 2 live lanes × 2 candidates
        for i in [0, 2] {
            let mut got = batch.matched(i).to_vec();
            got.sort();
            assert_eq!(got, ids, "event {i}");
        }
        for i in [1, 3] {
            assert!(batch.matched(i).is_empty(), "event {i}");
        }
    }

    #[test]
    fn memory_usage_grows_with_subscriptions() {
        let mut e = NonCanonicalEngine::new();
        let base = e.memory_usage().total();
        for i in 0..100 {
            let s = format!("(a{i} = 1 or b{i} = 2) and c{i} = 3");
            e.subscribe(&Expr::parse(&s).unwrap()).unwrap();
        }
        let grown = e.memory_usage();
        assert!(grown.total() > base);
        assert!(grown.trees > 0);
        assert!(grown.association > 0);
        assert!(grown.phase2_bytes() < grown.total());
    }

    #[test]
    fn empty_engine_matches_nothing() {
        let mut e = Matcher::new(NonCanonicalEngine::new());
        let ev = Event::builder().attr("a", 1_i64).build();
        let r = e.match_event(&ev);
        assert!(r.matched.is_empty());
        assert_eq!(r.stats.fulfilled, 0);
    }
}
