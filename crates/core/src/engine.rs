//! The common engine interface.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use boolmatch_expr::{DnfError, Expr};
use boolmatch_types::Event;

use crate::{
    BatchScratch, EncodeError, FulfilledSet, MatchScratch, MatchStats, Matcher, MemoryUsage,
    SubscriptionId,
};

/// The result of matching one event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchResult {
    /// Ids of the subscriptions the event matches, in unspecified
    /// order, without duplicates.
    pub matched: Vec<SubscriptionId>,
    /// Work counters for the match.
    pub stats: MatchStats,
}

/// A subscription could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeError {
    /// The engine requires DNF transformation and the expansion exceeds
    /// the configured limit (counting engines only — the expressive gap
    /// the paper is about).
    DnfTooLarge {
        /// Conjunctions the expansion would produce.
        estimate: u128,
        /// The configured limit.
        limit: usize,
    },
    /// A DNF conjunct has more predicates than the counting vectors'
    /// one-byte entries can count (paper §3.3: max 256 predicates per
    /// subscription; our entries count to 255).
    ConjunctTooWide {
        /// Predicates in the offending conjunct.
        width: usize,
    },
    /// The subscription tree could not be byte-encoded (non-canonical
    /// engine only).
    Encode(EncodeError),
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::DnfTooLarge { estimate, limit } => write!(
                f,
                "canonical transformation needs {estimate} conjunctions, over the limit of {limit}"
            ),
            SubscribeError::ConjunctTooWide { width } => write!(
                f,
                "conjunct with {width} predicates exceeds the 255-predicate counting limit"
            ),
            SubscribeError::Encode(e) => write!(f, "subscription tree encoding failed: {e}"),
        }
    }
}

impl Error for SubscribeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SubscribeError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for SubscribeError {
    fn from(e: EncodeError) -> Self {
        SubscribeError::Encode(e)
    }
}

impl From<DnfError> for SubscribeError {
    fn from(e: DnfError) -> Self {
        match e {
            DnfError::TooLarge { estimate, limit } => {
                SubscribeError::DnfTooLarge { estimate, limit }
            }
        }
    }
}

/// A subscription could not be removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsubscribeError {
    /// The id was never issued or is already unsubscribed.
    UnknownSubscription(SubscriptionId),
}

impl fmt::Display for UnsubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsubscribeError::UnknownSubscription(id) => {
                write!(f, "subscription {id} is not registered")
            }
        }
    }
}

impl Error for UnsubscribeError {}

/// Which engine implementation to instantiate; used by the broker and
/// the benchmark harness to select engines by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The paper's non-canonical engine.
    NonCanonical,
    /// The classic counting algorithm over DNF-transformed
    /// subscriptions.
    Counting,
    /// The candidate-driven counting variant (paper §3.3).
    CountingVariant,
}

impl EngineKind {
    /// All engine kinds, in the order the paper's figures list them.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::NonCanonical,
        EngineKind::Counting,
        EngineKind::CountingVariant,
    ];

    /// Short label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::NonCanonical => "non-canonical",
            EngineKind::Counting => "counting",
            EngineKind::CountingVariant => "counting-variant",
        }
    }

    /// Instantiates a fresh engine of this kind with default
    /// configuration.
    pub fn build(self) -> Box<dyn FilterEngine + Send + Sync> {
        match self {
            EngineKind::NonCanonical => Box::new(crate::NonCanonicalEngine::new()),
            EngineKind::Counting => Box::new(crate::CountingEngine::new()),
            EngineKind::CountingVariant => Box::new(crate::CountingVariantEngine::new()),
        }
    }

    /// Instantiates a fresh engine bundled with its own scratch — the
    /// convenient form for single-threaded callers.
    pub fn build_matcher(self) -> Matcher<Box<dyn FilterEngine + Send + Sync>> {
        Matcher::new(self.build())
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A two-phase event filtering engine (paper §3.2).
///
/// Phase 1 (*predicate matching*) maps an event to the set of fulfilled
/// predicate ids via one-dimensional indexes; phase 2 (*subscription
/// matching*) maps that set to matching subscriptions. The phases are
/// exposed separately because the paper's evaluation measures phase 2
/// in isolation — phase 1 is identical across engines by construction.
///
/// # Threading model
///
/// **Matching is `&self`**; only `subscribe`/`unsubscribe` mutate the
/// engine. All per-event mutable state (candidate buffers, hit
/// counters, stamp arrays, the evaluator stack) lives in a caller-owned
/// [`MatchScratch`], so any number of threads may match concurrently
/// against one engine — e.g. behind the read side of an `RwLock`, as
/// `boolmatch-broker` does — each with its own scratch. Matching is
/// allocation-free in steady state: the scratch resizes lazily to the
/// engine's current size and is reusable across events, engines, and
/// engine kinds. Single-threaded callers who prefer the bundled
/// ergonomics can wrap an engine in a [`Matcher`].
pub trait FilterEngine {
    /// The engine's kind.
    fn kind(&self) -> EngineKind;

    /// Registers a subscription and returns its id.
    ///
    /// # Errors
    ///
    /// See [`SubscribeError`]; the canonical engines refuse
    /// subscriptions whose DNF expansion is too large, which is the
    /// paper's point.
    fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError>;

    /// Removes a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`UnsubscribeError::UnknownSubscription`] for ids that
    /// are not currently registered.
    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError>;

    /// Phase 1: collects the predicates fulfilled by `event` into
    /// `out` (which is reset first).
    fn phase1(&self, event: &Event, out: &mut FulfilledSet);

    /// Phase 2: computes the subscriptions matched by a fulfilled set
    /// into `matched` (cleared first), using `scratch` for all per-event
    /// mutable state.
    fn phase2(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats;

    /// Both phases, leaving the matched ids in `scratch`
    /// ([`MatchScratch::matched`]) — the allocation-free form hot paths
    /// use (the broker's publish path reuses one scratch per thread
    /// across events).
    fn match_event_into(&self, event: &Event, scratch: &mut MatchScratch) -> MatchStats {
        // The fulfilled/matched buffers are moved out while phase2
        // borrows the rest of the scratch; the moves are pointer swaps.
        let mut fulfilled = std::mem::take(&mut scratch.fulfilled);
        self.phase1(event, &mut fulfilled);
        let mut matched = std::mem::take(&mut scratch.matched);
        let stats = self.phase2(&fulfilled, scratch, &mut matched);
        scratch.fulfilled = fulfilled;
        scratch.matched = matched;
        stats
    }

    /// Both phases, returning an owned [`MatchResult`]. Allocates the
    /// result vector; use [`FilterEngine::match_event_into`] on hot
    /// paths.
    fn match_event(&self, event: &Event, scratch: &mut MatchScratch) -> MatchResult {
        let stats = self.match_event_into(event, scratch);
        MatchResult {
            matched: scratch.matched.clone(),
            stats,
        }
    }

    /// Matches a whole batch of events in one call, leaving per-event
    /// matched ids in `batch` ([`BatchScratch::matched`]) and returning
    /// the summed stats.
    ///
    /// `skip` marks events to exclude (empty means "none"): a skipped
    /// event does no matching work, contributes nothing to the stats,
    /// and its matched list is left empty — sharded callers use this to
    /// prune a shard's non-candidates once per batch. When `skip` is
    /// non-empty it must have one flag per event.
    ///
    /// The contract against the per-event path: for every non-skipped
    /// event, `batch.matched(e)` holds exactly the ids
    /// [`FilterEngine::match_event`] reports for `events[e]`
    /// (per-event order is unspecified, like [`MatchScratch::matched`]),
    /// and the summed stats equal the sum of the per-event stats —
    /// except [`MatchStats::batch_events`]/[`MatchStats::batch_passes`],
    /// which only the batch path reports. Single-event batches run the
    /// byte-identical scalar path.
    ///
    /// This default simply loops [`FilterEngine::match_event_into`]
    /// (one predicate-table pass per event), so custom engines keep
    /// working; the built-in engines override it with lane kernels that
    /// walk the predicate tables once per chunk of up to 64 events.
    fn match_batch(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        batch: &mut BatchScratch,
    ) -> MatchStats {
        debug_assert!(
            skip.is_empty() || skip.len() == events.len(),
            "skip mask must be empty or one flag per event"
        );
        batch.begin_batch(events.len());
        let mut stats = MatchStats::default();
        for (e, event) in events.iter().enumerate() {
            if skip.get(e).copied().unwrap_or(false) {
                continue;
            }
            stats = stats + self.match_event_into(event, &mut batch.scalar);
            stats.batch_events += 1;
            stats.batch_passes += 1;
            batch.matched[e].extend_from_slice(&batch.scalar.matched);
        }
        stats
    }

    /// Number of registered (original) subscriptions.
    fn subscription_count(&self) -> usize;

    /// Upper bound (exclusive) of the dense subscription-id space —
    /// including ids of unsubscribed slots. Scratch stamp arrays are
    /// sized against this.
    fn subscription_id_bound(&self) -> usize {
        self.subscription_count()
    }

    /// Number of internally registered matching units: original
    /// subscriptions for the non-canonical engine, DNF conjunctions for
    /// the counting engines — the "multiple of the number of original
    /// registered subscriptions" of paper §2.2.
    fn registered_units(&self) -> usize {
        self.subscription_count()
    }

    /// Upper bound (exclusive) of the dense matching-unit slot space —
    /// including freed slots awaiting reuse, unlike
    /// [`FilterEngine::registered_units`]. Scratch hit vectors are
    /// sized against this.
    fn unit_slot_bound(&self) -> usize {
        self.registered_units()
    }

    /// Number of live distinct predicates.
    fn predicate_count(&self) -> usize;

    /// Size of the predicate id universe (for sizing external
    /// [`FulfilledSet`]s).
    fn predicate_universe(&self) -> usize;

    /// Byte-accurate memory breakdown.
    fn memory_usage(&self) -> MemoryUsage;
}

impl<T: FilterEngine + ?Sized> FilterEngine for Box<T> {
    fn kind(&self) -> EngineKind {
        (**self).kind()
    }

    fn subscribe(&mut self, expr: &Expr) -> Result<SubscriptionId, SubscribeError> {
        (**self).subscribe(expr)
    }

    fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), UnsubscribeError> {
        (**self).unsubscribe(id)
    }

    fn phase1(&self, event: &Event, out: &mut FulfilledSet) {
        (**self).phase1(event, out);
    }

    fn phase2(
        &self,
        fulfilled: &FulfilledSet,
        scratch: &mut MatchScratch,
        matched: &mut Vec<SubscriptionId>,
    ) -> MatchStats {
        (**self).phase2(fulfilled, scratch, matched)
    }

    fn match_event_into(&self, event: &Event, scratch: &mut MatchScratch) -> MatchStats {
        (**self).match_event_into(event, scratch)
    }

    fn match_event(&self, event: &Event, scratch: &mut MatchScratch) -> MatchResult {
        (**self).match_event(event, scratch)
    }

    fn match_batch(
        &self,
        events: &[Arc<Event>],
        skip: &[bool],
        batch: &mut BatchScratch,
    ) -> MatchStats {
        (**self).match_batch(events, skip, batch)
    }

    fn subscription_count(&self) -> usize {
        (**self).subscription_count()
    }

    fn subscription_id_bound(&self) -> usize {
        (**self).subscription_id_bound()
    }

    fn registered_units(&self) -> usize {
        (**self).registered_units()
    }

    fn unit_slot_bound(&self) -> usize {
        (**self).unit_slot_bound()
    }

    fn predicate_count(&self) -> usize {
        (**self).predicate_count()
    }

    fn predicate_universe(&self) -> usize {
        (**self).predicate_universe()
    }

    fn memory_usage(&self) -> MemoryUsage {
        (**self).memory_usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_labels_are_distinct() {
        let labels: Vec<&str> = EngineKind::ALL.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), 3);
        assert_eq!(labels, dedup);
    }

    #[test]
    fn build_constructs_each_kind() {
        for kind in EngineKind::ALL {
            let engine = kind.build();
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.subscription_count(), 0);
        }
    }

    #[test]
    fn subscribe_error_display() {
        let e = SubscribeError::DnfTooLarge {
            estimate: 1 << 40,
            limit: 1024,
        };
        assert!(e.to_string().contains("conjunctions"));
        let e = SubscribeError::ConjunctTooWide { width: 300 };
        assert!(e.to_string().contains("255"));
    }

    #[test]
    fn unsubscribe_error_display() {
        let e = UnsubscribeError::UnknownSubscription(SubscriptionId::from_index(3));
        assert!(e.to_string().contains("s3"));
    }
}
