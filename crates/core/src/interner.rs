//! Reference-counted predicate interning.

use std::collections::HashMap;

use boolmatch_expr::Predicate;

use crate::PredicateId;

/// Interns predicates so each distinct `attribute OP constant` filter is
/// stored — and evaluated in phase 1 — exactly once, no matter how many
/// subscriptions share it (paper §3.1).
///
/// Reference counts track how many subscription tree leaves point at a
/// predicate; [`PredicateInterner::release`] frees the slot when the
/// last leaf is unsubscribed, and freed slots are recycled.
///
/// # Examples
///
/// ```
/// use boolmatch_core::PredicateInterner;
/// use boolmatch_expr::{CompareOp, Predicate};
///
/// let mut interner = PredicateInterner::new();
/// let p = Predicate::new("a", CompareOp::Gt, 10_i64);
/// let (id, fresh) = interner.intern(&p);
/// assert!(fresh);
/// let (again, fresh) = interner.intern(&p);
/// assert_eq!(id, again);
/// assert!(!fresh);
/// assert_eq!(interner.resolve(id), &p);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PredicateInterner {
    by_pred: HashMap<Predicate, PredicateId>,
    preds: Vec<Predicate>,
    refcounts: Vec<u32>,
    free: Vec<PredicateId>,
}

impl PredicateInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `pred`, incrementing its reference count. Returns the id
    /// and whether the predicate was newly added (callers register new
    /// predicates with the phase-1 index).
    pub fn intern(&mut self, pred: &Predicate) -> (PredicateId, bool) {
        if let Some(&id) = self.by_pred.get(pred) {
            self.refcounts[id.index()] += 1;
            return (id, false);
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.preds[id.index()] = pred.clone();
                self.refcounts[id.index()] = 1;
                id
            }
            None => {
                let id = PredicateId::from_index(self.preds.len());
                self.preds.push(pred.clone());
                self.refcounts.push(1);
                id
            }
        };
        self.by_pred.insert(pred.clone(), id);
        (id, true)
    }

    /// Decrements the reference count of `id`. Returns `true` when the
    /// count reached zero: the predicate was dropped and the caller must
    /// remove it from the phase-1 index (its value is still readable via
    /// [`PredicateInterner::resolve`] until the slot is reused).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live (double release).
    pub fn release(&mut self, id: PredicateId) -> bool {
        let rc = &mut self.refcounts[id.index()];
        assert!(*rc > 0, "release of dead predicate {id}");
        *rc -= 1;
        if *rc == 0 {
            self.by_pred.remove(&self.preds[id.index()]);
            self.free.push(id);
            true
        } else {
            false
        }
    }

    /// The predicate stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never handed out.
    pub fn resolve(&self, id: PredicateId) -> &Predicate {
        &self.preds[id.index()]
    }

    /// Looks up a predicate without interning it.
    pub fn get(&self, pred: &Predicate) -> Option<PredicateId> {
        self.by_pred.get(pred).copied()
    }

    /// Current reference count of `id` (0 for freed slots).
    pub fn refcount(&self, id: PredicateId) -> u32 {
        self.refcounts[id.index()]
    }

    /// Number of live (distinct) predicates.
    pub fn len(&self) -> usize {
        self.by_pred.len()
    }

    /// Whether no predicates are live.
    pub fn is_empty(&self) -> bool {
        self.by_pred.is_empty()
    }

    /// Size of the dense id space (live + free slots). Scratch tables
    /// indexed by [`PredicateId`] must have at least this capacity.
    pub fn universe(&self) -> usize {
        self.preds.len()
    }

    /// Approximate heap bytes owned by the interner.
    pub fn heap_bytes(&self) -> usize {
        let pred_struct = std::mem::size_of::<Predicate>();
        let owned: usize = self.preds.iter().map(Predicate::heap_bytes).sum();
        owned
            + self.preds.capacity() * pred_struct
            + self.refcounts.capacity() * 4
            + self.free.capacity() * 4
            + self.by_pred.capacity() * (pred_struct + 8 + 8)
            + self
                .by_pred
                .keys()
                .map(Predicate::heap_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolmatch_expr::CompareOp;

    fn p(v: i64) -> Predicate {
        Predicate::new("a", CompareOp::Eq, v)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut i = PredicateInterner::new();
        let (a, fresh_a) = i.intern(&p(1));
        let (b, fresh_b) = i.intern(&p(1));
        assert_eq!(a, b);
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.refcount(a), 2);
    }

    #[test]
    fn distinct_predicates_get_distinct_ids() {
        let mut i = PredicateInterner::new();
        let (a, _) = i.intern(&p(1));
        let (b, _) = i.intern(&p(2));
        let (c, _) = i.intern(&Predicate::new("a", CompareOp::Ne, 1_i64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn release_frees_at_zero_and_recycles() {
        let mut i = PredicateInterner::new();
        let (a, _) = i.intern(&p(1));
        i.intern(&p(1));
        assert!(!i.release(a));
        assert!(i.release(a));
        assert_eq!(i.len(), 0);
        assert_eq!(i.universe(), 1);
        // Recycled slot: same dense index for a fresh predicate.
        let (b, fresh) = i.intern(&p(99));
        assert!(fresh);
        assert_eq!(b.index(), a.index());
        assert_eq!(i.resolve(b), &p(99));
    }

    #[test]
    #[should_panic(expected = "release of dead predicate")]
    fn double_release_panics() {
        let mut i = PredicateInterner::new();
        let (a, _) = i.intern(&p(1));
        i.release(a);
        i.release(a);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = PredicateInterner::new();
        assert_eq!(i.get(&p(1)), None);
        let (a, _) = i.intern(&p(1));
        assert_eq!(i.get(&p(1)), Some(a));
        assert_eq!(i.refcount(a), 1);
    }

    #[test]
    fn universe_never_shrinks() {
        let mut i = PredicateInterner::new();
        let ids: Vec<_> = (0..10).map(|v| i.intern(&p(v)).0).collect();
        for id in &ids {
            i.release(*id);
        }
        assert_eq!(i.len(), 0);
        assert_eq!(i.universe(), 10);
    }
}
