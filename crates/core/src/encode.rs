//! Byte encoding of subscription trees.
//!
//! The paper (§3.3) encodes subscription trees "on a byte level": one
//! byte for a Boolean operator, one byte for the child count of an
//! inner node, two bytes per child for its width, and four bytes per
//! predicate identifier. This module implements exactly that layout
//! plus a one-byte *node tag* that makes leaf/inner discrimination
//! explicit (see DESIGN.md, substitution 3):
//!
//! ```text
//! leaf  := TAG_PRED  id:u32le                     (5 bytes)
//! inner := tag:u8  n:u8  width[n]:u16le  child[n] (2 + 2n + Σwidth)
//! ```
//!
//! Child widths let the evaluator skip an already-decided child without
//! walking it — the short-circuit the `ablation_shortcircuit` bench
//! quantifies. Nodes hold at most 255 children; wider n-ary nodes are
//! transparently re-nested into same-operator chunks (semantics
//! preserved by associativity).

use std::error::Error;
use std::fmt;

use crate::{FulfilledSet, PredicateId};

/// Node tag of a predicate leaf.
pub(crate) const TAG_PRED: u8 = 0;
/// Node tag of an AND inner node.
pub(crate) const TAG_AND: u8 = 1;
/// Node tag of an OR inner node.
pub(crate) const TAG_OR: u8 = 2;
/// Node tag of a NOT inner node (always exactly one child).
pub(crate) const TAG_NOT: u8 = 3;

/// A subscription tree whose leaves are interned [`PredicateId`]s —
/// the form the non-canonical engine compiles
/// [`boolmatch_expr::Expr`]s into before byte-encoding them.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{encode, decode, IdExpr, PredicateId};
///
/// fn p(i: usize) -> IdExpr { IdExpr::Pred(PredicateId::from_index(i)) }
/// let tree = IdExpr::And(vec![IdExpr::Or(vec![p(0), p(1)]), p(2)]);
/// let bytes = encode(&tree)?;
/// assert_eq!(decode(&bytes)?, tree);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdExpr {
    /// Leaf: an interned predicate.
    Pred(PredicateId),
    /// N-ary conjunction (at least one child).
    And(Vec<IdExpr>),
    /// N-ary disjunction (at least one child).
    Or(Vec<IdExpr>),
    /// Negation.
    Not(Box<IdExpr>),
}

impl IdExpr {
    /// Evaluates against a fulfilled-predicate set. This is the boxed
    /// reference evaluator the encoded evaluators are tested against
    /// (and the `ablation_encoding` bench compares with).
    pub fn eval(&self, set: &FulfilledSet) -> bool {
        match self {
            IdExpr::Pred(id) => set.contains(*id),
            IdExpr::And(cs) => cs.iter().all(|c| c.eval(set)),
            IdExpr::Or(cs) => cs.iter().any(|c| c.eval(set)),
            IdExpr::Not(c) => !c.eval(set),
        }
    }

    /// Number of predicate leaves (duplicates counted).
    pub fn leaf_count(&self) -> usize {
        match self {
            IdExpr::Pred(_) => 1,
            IdExpr::And(cs) | IdExpr::Or(cs) => cs.iter().map(IdExpr::leaf_count).sum(),
            IdExpr::Not(c) => c.leaf_count(),
        }
    }

    /// Visits every leaf predicate id, including duplicates.
    pub fn for_each_leaf(&self, f: &mut impl FnMut(PredicateId)) {
        match self {
            IdExpr::Pred(id) => f(*id),
            IdExpr::And(cs) | IdExpr::Or(cs) => {
                cs.iter().for_each(|c| c.for_each_leaf(f));
            }
            IdExpr::Not(c) => c.for_each_leaf(f),
        }
    }
}

/// Encoding was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A child subtree encodes to more than `u16::MAX` bytes, which the
    /// paper's two-byte width field cannot represent. Carries the
    /// offending width.
    SubtreeTooWide {
        /// The encoded width that overflowed the field.
        width: usize,
    },
    /// An inner node has no children (malformed input; `boolmatch-expr`
    /// constructors never produce this).
    EmptyNode,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::SubtreeTooWide { width } => write!(
                f,
                "child subtree encodes to {width} bytes, over the 2-byte width limit of 65535"
            ),
            EncodeError::EmptyNode => write!(f, "inner node with no children"),
        }
    }
}

impl Error for EncodeError {}

/// A byte sequence failed to decode as a subscription tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended inside a node.
    UnexpectedEnd,
    /// An unknown node tag was found at the given offset.
    BadTag {
        /// The unknown tag byte.
        tag: u8,
        /// Offset of the tag in the input.
        offset: usize,
    },
    /// A node's declared child widths disagree with the input length.
    WidthMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "input ended inside a node"),
            DecodeError::BadTag { tag, offset } => {
                write!(f, "unknown node tag {tag:#04x} at offset {offset}")
            }
            DecodeError::WidthMismatch => write!(f, "child widths disagree with input length"),
        }
    }
}

impl Error for DecodeError {}

/// Maximum children per encoded node (one-byte child count, §3.3).
const MAX_CHILDREN: usize = 255;

/// Encodes a subscription tree into the byte layout described in the
/// module documentation ([`crate::encode`]-level docs).
///
/// # Errors
///
/// Returns [`EncodeError::SubtreeTooWide`] when a child subtree exceeds
/// 65 535 bytes (≈13 000 predicates — far beyond the paper's workloads)
/// and [`EncodeError::EmptyNode`] on malformed input.
pub fn encode(tree: &IdExpr) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(encoded_size_estimate(tree));
    encode_into(tree, &mut out)?;
    Ok(out)
}

fn encoded_size_estimate(tree: &IdExpr) -> usize {
    match tree {
        IdExpr::Pred(_) => 5,
        IdExpr::And(cs) | IdExpr::Or(cs) => {
            2 + 2 * cs.len() + cs.iter().map(encoded_size_estimate).sum::<usize>()
        }
        IdExpr::Not(c) => 4 + encoded_size_estimate(c),
    }
}

fn encode_into(tree: &IdExpr, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    match tree {
        IdExpr::Pred(id) => {
            out.push(TAG_PRED);
            out.extend_from_slice(&id.raw().to_le_bytes());
            Ok(())
        }
        IdExpr::And(cs) => encode_inner(TAG_AND, cs, out),
        IdExpr::Or(cs) => encode_inner(TAG_OR, cs, out),
        IdExpr::Not(c) => {
            let children = std::slice::from_ref(c.as_ref());
            encode_inner(TAG_NOT, children, out)
        }
    }
}

fn encode_inner(tag: u8, children: &[IdExpr], out: &mut Vec<u8>) -> Result<(), EncodeError> {
    if children.is_empty() {
        return Err(EncodeError::EmptyNode);
    }
    if children.len() > MAX_CHILDREN {
        // Re-nest into same-operator chunks; `Not` never has >1 child.
        debug_assert!(tag == TAG_AND || tag == TAG_OR);
        let chunked: Vec<IdExpr> = children
            .chunks(MAX_CHILDREN)
            .map(|chunk| {
                if tag == TAG_AND {
                    IdExpr::And(chunk.to_vec())
                } else {
                    IdExpr::Or(chunk.to_vec())
                }
            })
            .collect();
        return encode_inner(tag, &chunked, out);
    }

    out.push(tag);
    out.push(children.len() as u8);
    let widths_at = out.len();
    // Reserve the width table; fill it in after encoding the children.
    out.resize(widths_at + 2 * children.len(), 0);
    for (i, child) in children.iter().enumerate() {
        let start = out.len();
        encode_into(child, out)?;
        let width = out.len() - start;
        let width16 = u16::try_from(width).map_err(|_| EncodeError::SubtreeTooWide { width })?;
        out[widths_at + 2 * i..widths_at + 2 * i + 2].copy_from_slice(&width16.to_le_bytes());
    }
    Ok(())
}

/// Decodes a byte sequence produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the malformation. Note that
/// chunked nodes (created for >255 children) decode to their nested
/// form, so `decode(encode(t))` equals `t` only for trees already
/// within the 255-child limit; semantics are preserved in all cases.
pub fn decode(bytes: &[u8]) -> Result<IdExpr, DecodeError> {
    let (tree, consumed) = decode_node(bytes, 0)?;
    if consumed != bytes.len() {
        return Err(DecodeError::WidthMismatch);
    }
    Ok(tree)
}

fn decode_node(bytes: &[u8], offset: usize) -> Result<(IdExpr, usize), DecodeError> {
    let tag = *bytes.get(offset).ok_or(DecodeError::UnexpectedEnd)?;
    match tag {
        TAG_PRED => {
            let raw = bytes
                .get(offset + 1..offset + 5)
                .ok_or(DecodeError::UnexpectedEnd)?;
            let id = u32::from_le_bytes(raw.try_into().expect("4 bytes"));
            Ok((IdExpr::Pred(PredicateId::from_raw(id)), 5))
        }
        TAG_AND | TAG_OR | TAG_NOT => {
            let n = *bytes.get(offset + 1).ok_or(DecodeError::UnexpectedEnd)? as usize;
            if n == 0 || (tag == TAG_NOT && n != 1) {
                return Err(DecodeError::WidthMismatch);
            }
            let mut children = Vec::with_capacity(n);
            let widths_at = offset + 2;
            let mut child_at = widths_at + 2 * n;
            for i in 0..n {
                let w = bytes
                    .get(widths_at + 2 * i..widths_at + 2 * i + 2)
                    .ok_or(DecodeError::UnexpectedEnd)?;
                let width = u16::from_le_bytes(w.try_into().expect("2 bytes")) as usize;
                let (child, consumed) = decode_node(bytes, child_at)?;
                if consumed != width {
                    return Err(DecodeError::WidthMismatch);
                }
                children.push(child);
                child_at += width;
            }
            let node = match tag {
                TAG_AND => IdExpr::And(children),
                TAG_OR => IdExpr::Or(children),
                _ => IdExpr::Not(Box::new(children.pop().expect("n == 1"))),
            };
            Ok((node, child_at - offset))
        }
        other => Err(DecodeError::BadTag { tag: other, offset }),
    }
}

/// Visits every leaf predicate id in an encoded tree without building
/// an [`IdExpr`] — the unsubscription fast path.
pub(crate) fn for_each_encoded_leaf(bytes: &[u8], f: &mut impl FnMut(PredicateId)) {
    let mut offset = 0;
    while offset < bytes.len() {
        match bytes[offset] {
            TAG_PRED => {
                let raw: [u8; 4] = bytes[offset + 1..offset + 5]
                    .try_into()
                    .expect("encoded tree is well-formed");
                f(PredicateId::from_raw(u32::from_le_bytes(raw)));
                offset += 5;
            }
            _ => {
                // Inner node: skip the header; children follow inline.
                let n = bytes[offset + 1] as usize;
                offset += 2 + 2 * n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> IdExpr {
        IdExpr::Pred(PredicateId::from_index(i))
    }

    #[test]
    fn leaf_encoding_layout() {
        let bytes = encode(&p(0x01020304)).unwrap();
        assert_eq!(bytes, vec![TAG_PRED, 0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn inner_encoding_layout() {
        // AND of two leaves: tag, n=2, w0=5, w1=5, leaf, leaf
        let bytes = encode(&IdExpr::And(vec![p(1), p(2)])).unwrap();
        assert_eq!(bytes.len(), 2 + 4 + 10);
        assert_eq!(bytes[0], TAG_AND);
        assert_eq!(bytes[1], 2);
        assert_eq!(u16::from_le_bytes([bytes[2], bytes[3]]), 5);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 5);
    }

    #[test]
    fn round_trip_various_shapes() {
        let trees = [
            p(0),
            IdExpr::Not(Box::new(p(1))),
            IdExpr::And(vec![p(0), p(1), p(2)]),
            IdExpr::Or(vec![
                IdExpr::And(vec![p(0), IdExpr::Not(Box::new(p(1)))]),
                p(2),
                IdExpr::Or(vec![p(3), p(4)]),
            ]),
        ];
        for tree in trees {
            let bytes = encode(&tree).unwrap();
            assert_eq!(decode(&bytes).unwrap(), tree);
        }
    }

    #[test]
    fn wide_nodes_are_chunked_and_equivalent() {
        let children: Vec<IdExpr> = (0..1000).map(p).collect();
        let tree = IdExpr::Or(children);
        let bytes = encode(&tree).unwrap();
        let decoded = decode(&bytes).unwrap();
        // Chunked shape differs, semantics agree.
        let mut set = FulfilledSet::with_universe(1000);
        assert!(!decoded.eval(&set));
        set.insert(PredicateId::from_index(999));
        assert!(decoded.eval(&set));
        assert!(tree.eval(&set));
        assert_eq!(decoded.leaf_count(), 1000);
    }

    #[test]
    fn empty_node_is_rejected() {
        assert_eq!(
            encode(&IdExpr::And(vec![])).unwrap_err(),
            EncodeError::EmptyNode
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(decode(&[]), Err(DecodeError::UnexpectedEnd)));
        assert!(matches!(
            decode(&[9, 1, 2]),
            Err(DecodeError::BadTag { tag: 9, offset: 0 })
        ));
        assert!(matches!(
            decode(&[TAG_PRED, 1]),
            Err(DecodeError::UnexpectedEnd)
        ));
        // Trailing bytes after a valid leaf.
        let mut bytes = encode(&p(1)).unwrap();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_not_with_two_children() {
        // Hand-craft NOT with n=2.
        let leaf = encode(&p(0)).unwrap();
        let mut bytes = vec![TAG_NOT, 2, 5, 0, 5, 0];
        bytes.extend_from_slice(&leaf);
        bytes.extend_from_slice(&leaf);
        assert!(matches!(decode(&bytes), Err(DecodeError::WidthMismatch)));
    }

    #[test]
    fn encoded_leaf_walk_matches_id_expr() {
        let tree = IdExpr::And(vec![
            IdExpr::Or(vec![p(5), p(6), p(5)]),
            IdExpr::Not(Box::new(p(7))),
        ]);
        let bytes = encode(&tree).unwrap();
        let mut from_bytes = Vec::new();
        for_each_encoded_leaf(&bytes, &mut |id| from_bytes.push(id.index()));
        let mut from_tree = Vec::new();
        tree.for_each_leaf(&mut |id| from_tree.push(id.index()));
        assert_eq!(from_bytes, from_tree);
        assert_eq!(from_bytes, vec![5, 6, 5, 7]);
    }

    #[test]
    fn paper_fig1_encoding_size() {
        // (a>10 ∨ a<=5 ∨ b=1) ∧ (c<=20 ∨ c=30 ∨ d=5): with our 1-byte
        // tag the size is: root 2+4, two ORs (2+6) each, six leaves 5B
        // each = 6 + 16 + 30 = 52 bytes.
        let or1 = IdExpr::Or(vec![p(0), p(1), p(2)]);
        let or2 = IdExpr::Or(vec![p(3), p(4), p(5)]);
        let tree = IdExpr::And(vec![or1, or2]);
        assert_eq!(encode(&tree).unwrap().len(), 52);
    }

    #[test]
    fn size_estimate_is_exact_for_narrow_trees() {
        let tree = IdExpr::And(vec![IdExpr::Or(vec![p(0), p(1)]), p(2)]);
        assert_eq!(encoded_size_estimate(&tree), encode(&tree).unwrap().len());
    }
}
