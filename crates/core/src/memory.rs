//! Engine memory accounting.
//!
//! The paper's scalability argument (§2, §4) is about main-memory
//! exhaustion: on the authors' 512 MB machine the canonical engines
//! start page-swapping at ~0.7–1.6 M original subscriptions while the
//! non-canonical engine keeps going. We cannot (and should not) thrash
//! the host to reproduce that, so every engine reports a byte-accurate
//! [`MemoryUsage`] breakdown and the `boolmatch-workload` memory-wall
//! model derives the swap penalty analytically (DESIGN.md,
//! substitution 1).

use std::fmt;
use std::ops::Add;

/// A byte-level breakdown of an engine's resident data structures.
///
/// `phase2_bytes` is the quantity the paper's figures are sensitive to:
/// its experiments synthesize fulfilled-predicate sets directly, so only
/// the *subscription matching* structures compete for memory. The
/// breakdown keeps phase-1 structures and unsubscription support
/// separate so the memory-wall model can be configured either way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Interned predicate storage (shared by both phases).
    pub predicates: usize,
    /// Phase-1 structures: the per-attribute predicate indexes.
    pub phase1_index: usize,
    /// The predicate → subscription association table.
    pub association: usize,
    /// The subscription location table (non-canonical) or the flat
    /// conjunct tables (counting).
    pub locations: usize,
    /// Encoded subscription trees (non-canonical only).
    pub trees: usize,
    /// Hit and subscription-predicate-count vectors (counting only).
    pub vectors: usize,
    /// Structures needed only to support unsubscription (the paper's
    /// baseline omits these; §3.3).
    pub unsub_support: usize,
    /// Reusable per-event scratch (candidate buffers, stamp arrays).
    pub scratch: usize,
}

impl MemoryUsage {
    /// Total bytes across all components.
    pub fn total(&self) -> usize {
        self.predicates
            + self.phase1_index
            + self.association
            + self.locations
            + self.trees
            + self.vectors
            + self.unsub_support
            + self.scratch
    }

    /// Bytes of the phase-2 (subscription matching) structures — the
    /// paper-faithful memory figure: association table, location/flat
    /// tables, encoded trees and counting vectors, excluding phase-1
    /// indexes, predicate storage, unsubscription support and scratch.
    pub fn phase2_bytes(&self) -> usize {
        self.association + self.locations + self.trees + self.vectors
    }
}

impl Add for MemoryUsage {
    type Output = MemoryUsage;

    fn add(self, rhs: MemoryUsage) -> MemoryUsage {
        MemoryUsage {
            predicates: self.predicates + rhs.predicates,
            phase1_index: self.phase1_index + rhs.phase1_index,
            association: self.association + rhs.association,
            locations: self.locations + rhs.locations,
            trees: self.trees + rhs.trees,
            vectors: self.vectors + rhs.vectors,
            unsub_support: self.unsub_support + rhs.unsub_support,
            scratch: self.scratch + rhs.scratch,
        }
    }
}

impl fmt::Display for MemoryUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "predicates     {:>12}", self.predicates)?;
        writeln!(f, "phase1 index   {:>12}", self.phase1_index)?;
        writeln!(f, "association    {:>12}", self.association)?;
        writeln!(f, "locations      {:>12}", self.locations)?;
        writeln!(f, "trees          {:>12}", self.trees)?;
        writeln!(f, "vectors        {:>12}", self.vectors)?;
        writeln!(f, "unsub support  {:>12}", self.unsub_support)?;
        writeln!(f, "scratch        {:>12}", self.scratch)?;
        writeln!(f, "phase-2 total  {:>12}", self.phase2_bytes())?;
        write!(f, "total          {:>12}", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = MemoryUsage {
            predicates: 1,
            phase1_index: 2,
            association: 4,
            locations: 8,
            trees: 16,
            vectors: 32,
            unsub_support: 64,
            scratch: 128,
        };
        assert_eq!(m.total(), 255);
        assert_eq!(m.phase2_bytes(), 4 + 8 + 16 + 32);
    }

    #[test]
    fn add_is_componentwise() {
        let a = MemoryUsage {
            predicates: 1,
            trees: 5,
            ..Default::default()
        };
        let b = MemoryUsage {
            predicates: 2,
            vectors: 7,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.predicates, 3);
        assert_eq!(c.trees, 5);
        assert_eq!(c.vectors, 7);
    }

    #[test]
    fn display_is_nonempty_and_mentions_total() {
        let m = MemoryUsage::default();
        let s = m.to_string();
        assert!(s.contains("total"));
        assert!(s.contains("phase-2"));
    }
}
