//! Evaluation of encoded subscription trees against a fulfilled set.
//!
//! Two implementations of the same semantics:
//!
//! * [`eval_recursive`] — straightforward recursion over the byte
//!   layout; stack depth equals tree depth.
//! * [`eval_iterative`] — an explicit-stack machine immune to deep
//!   trees; this is what the engine uses.
//!
//! Both short-circuit: an `AND` stops at the first false child, an `OR`
//! at the first true one, using the encoded child widths to skip the
//! rest of the node without walking it. Equivalence of the two
//! evaluators (and of both with [`crate::IdExpr::eval`]) is
//! property-tested.

use crate::encode::{TAG_AND, TAG_NOT, TAG_OR, TAG_PRED};
use crate::{FulfilledSet, PredicateId};

// lint: hot-path — tree evaluation runs once per candidate
// subscription per event. Malformed-input panics below are the
// documented contract ("Panics on malformed input"): engine-encoded
// trees are always well-formed, and foreign bytes go through
// `crate::decode` first.

#[inline]
fn leaf_id(bytes: &[u8], offset: usize) -> PredicateId {
    let raw: [u8; 4] = bytes[offset + 1..offset + 5]
        .try_into()
        // lint: allow(panic-policy, reason = "documented contract: panics on malformed trees; engine-encoded trees are well-formed")
        .expect("encoded tree is well-formed");
    PredicateId::from_raw(u32::from_le_bytes(raw))
}

#[inline]
fn child_width(bytes: &[u8], widths_at: usize, i: usize) -> usize {
    u16::from_le_bytes(
        bytes[widths_at + 2 * i..widths_at + 2 * i + 2]
            .try_into()
            // lint: allow(panic-policy, reason = "documented contract: panics on malformed trees; engine-encoded trees are well-formed")
            .expect("encoded tree is well-formed"),
    ) as usize
}

/// Recursive evaluator; see the module documentation.
///
/// # Panics
///
/// Panics on malformed input (engine-encoded trees are always
/// well-formed; use [`crate::decode`] to validate foreign bytes).
pub fn eval_recursive(bytes: &[u8], set: &FulfilledSet) -> bool {
    eval_node(bytes, 0, set).0
}

fn eval_node(bytes: &[u8], offset: usize, set: &FulfilledSet) -> (bool, usize) {
    match bytes[offset] {
        TAG_PRED => (set.contains(leaf_id(bytes, offset)), 5),
        tag => {
            let n = bytes[offset + 1] as usize;
            let widths_at = offset + 2;
            let first_child = widths_at + 2 * n;
            // Total size is known from the width table alone.
            let mut total = 2 + 2 * n;
            for i in 0..n {
                total += child_width(bytes, widths_at, i);
            }
            match tag {
                TAG_NOT => {
                    let (v, _) = eval_node(bytes, first_child, set);
                    (!v, total)
                }
                TAG_AND => {
                    let mut child_at = first_child;
                    for i in 0..n {
                        let (v, _) = eval_node(bytes, child_at, set);
                        if !v {
                            return (false, total);
                        }
                        child_at += child_width(bytes, widths_at, i);
                    }
                    (true, total)
                }
                TAG_OR => {
                    let mut child_at = first_child;
                    for i in 0..n {
                        let (v, _) = eval_node(bytes, child_at, set);
                        if v {
                            return (true, total);
                        }
                        child_at += child_width(bytes, widths_at, i);
                    }
                    (false, total)
                }
                // lint: allow(panic-policy, reason = "documented contract: panics on malformed trees; encode emits no other tag")
                other => unreachable!("bad tag {other} in encoded tree"),
            }
        }
    }
}

/// A stack frame of the iterative evaluator: one partially evaluated
/// inner node.
#[derive(Debug)]
pub(crate) struct Frame {
    tag: u8,
    /// Offset of the width table.
    widths_at: usize,
    /// Offset of the next child to evaluate.
    next_child: usize,
    /// Children evaluated so far.
    i: usize,
    /// Total children.
    n: usize,
}

/// Explicit-stack evaluator; semantics identical to [`eval_recursive`]
/// but safe for arbitrarily deep trees. Pass a reusable `stack` buffer
/// to avoid per-call allocation (the engine does).
///
/// # Panics
///
/// Panics on malformed input, like [`eval_recursive`].
pub fn eval_iterative(bytes: &[u8], set: &FulfilledSet) -> bool {
    let mut stack = Vec::with_capacity(8);
    eval_iterative_with(bytes, set, &mut stack)
}

pub(crate) fn eval_iterative_with(
    bytes: &[u8],
    set: &FulfilledSet,
    stack: &mut Vec<Frame>,
) -> bool {
    stack.clear();
    let mut offset = 0usize;
    'descend: loop {
        // Evaluate the node at `offset` until a value is produced.
        let mut value = loop {
            match bytes[offset] {
                TAG_PRED => break set.contains(leaf_id(bytes, offset)),
                tag => {
                    let n = bytes[offset + 1] as usize;
                    let widths_at = offset + 2;
                    let first_child = widths_at + 2 * n;
                    stack.push(Frame {
                        tag,
                        widths_at,
                        next_child: first_child,
                        i: 0,
                        n,
                    });
                    offset = first_child;
                }
            }
        };

        // Propagate the value up, short-circuiting as we go.
        loop {
            let Some(frame) = stack.last_mut() else {
                return value;
            };
            frame.i += 1;
            let done = match frame.tag {
                TAG_NOT => {
                    value = !value;
                    true
                }
                TAG_AND => !value || frame.i == frame.n,
                TAG_OR => value || frame.i == frame.n,
                // lint: allow(panic-policy, reason = "documented contract: panics on malformed trees; encode emits no other tag")
                other => unreachable!("bad tag {other} in encoded tree"),
            };
            if done {
                stack.pop();
                continue;
            }
            // Schedule the next child of this frame.
            let w = child_width(bytes, frame.widths_at, frame.i - 1);
            frame.next_child += w;
            offset = frame.next_child;
            continue 'descend;
        }
    }
}

// Re-exported privately for the engine's reusable scratch.
pub(crate) use Frame as EvalFrame;

// lint: end-hot-path

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, IdExpr};

    fn p(i: usize) -> IdExpr {
        IdExpr::Pred(PredicateId::from_index(i))
    }

    fn set_of(ids: &[usize]) -> FulfilledSet {
        FulfilledSet::from_ids(ids.iter().map(|&i| PredicateId::from_index(i)), 1024)
    }

    fn both(tree: &IdExpr, set: &FulfilledSet) -> bool {
        let bytes = encode(tree).unwrap();
        let r = eval_recursive(&bytes, set);
        let i = eval_iterative(&bytes, set);
        let reference = tree.eval(set);
        assert_eq!(r, reference, "recursive vs reference for {tree:?}");
        assert_eq!(i, reference, "iterative vs reference for {tree:?}");
        reference
    }

    #[test]
    fn leaf_evaluation() {
        assert!(both(&p(3), &set_of(&[3])));
        assert!(!both(&p(3), &set_of(&[4])));
        assert!(!both(&p(3), &set_of(&[])));
    }

    #[test]
    fn and_or_not_semantics() {
        let tree = IdExpr::And(vec![IdExpr::Or(vec![p(0), p(1)]), p(2)]);
        assert!(both(&tree, &set_of(&[0, 2])));
        assert!(both(&tree, &set_of(&[1, 2])));
        assert!(!both(&tree, &set_of(&[0, 1])));
        assert!(!both(&tree, &set_of(&[2])));

        let neg = IdExpr::Not(Box::new(tree));
        assert!(!both(&neg, &set_of(&[0, 2])));
        assert!(both(&neg, &set_of(&[2])));
    }

    #[test]
    fn paper_fig1_tree() {
        // (p0 ∨ p1 ∨ p2) ∧ (p3 ∨ p4 ∨ p5)
        let tree = IdExpr::And(vec![
            IdExpr::Or(vec![p(0), p(1), p(2)]),
            IdExpr::Or(vec![p(3), p(4), p(5)]),
        ]);
        assert!(both(&tree, &set_of(&[0, 4])));
        assert!(both(&tree, &set_of(&[2, 5])));
        assert!(!both(&tree, &set_of(&[0, 1, 2])));
        assert!(!both(&tree, &set_of(&[3, 4, 5])));
        assert!(!both(&tree, &set_of(&[])));
    }

    #[test]
    fn deep_not_chain_does_not_overflow_iterative() {
        // Depth is bounded by the recursive *encoder* (and the final
        // drop of the nested boxes), not by the iterative evaluator;
        // engine-compacted trees collapse double negation anyway.
        let mut tree = p(0);
        for _ in 0..2_000 {
            tree = IdExpr::Not(Box::new(tree));
        }
        let bytes = encode(&tree).unwrap();
        // even depth of NOTs -> identity
        assert!(eval_iterative(&bytes, &set_of(&[0])));
        assert!(!eval_iterative(&bytes, &set_of(&[1])));
    }

    #[test]
    fn mixed_deep_tree() {
        // alternating and/or chain
        let mut tree = p(0);
        for d in 1..200 {
            tree = if d % 2 == 0 {
                IdExpr::And(vec![tree, p(d)])
            } else {
                IdExpr::Or(vec![tree, p(d)])
            };
        }
        let bytes = encode(&tree).unwrap();
        assert_eq!(
            eval_recursive(&bytes, &set_of(&[199])),
            eval_iterative(&bytes, &set_of(&[199]))
        );
        assert_eq!(
            eval_recursive(&bytes, &set_of(&[])),
            eval_iterative(&bytes, &set_of(&[]))
        );
    }

    #[test]
    fn chunked_wide_node_evaluates() {
        let tree = IdExpr::Or((0..600).map(p).collect());
        let bytes = encode(&tree).unwrap();
        let mut wide_set = FulfilledSet::with_universe(600);
        assert!(!eval_iterative(&bytes, &wide_set));
        wide_set.insert(PredicateId::from_index(599));
        assert!(eval_iterative(&bytes, &wide_set));
        assert!(eval_recursive(&bytes, &wide_set));
    }
}
