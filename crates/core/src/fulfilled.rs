//! The fulfilled-predicate set produced by phase 1.

use crate::PredicateId;

/// The output of predicate matching: the set `{id(p)}` of predicates an
/// event fulfils (paper §3.2).
///
/// Backed by a generation-stamped array, so it supports `O(1)` inserts
/// and membership tests *and* can be reused across events without
/// clearing — [`FulfilledSet::begin`] just bumps the generation. This
/// matters because the stamp array is sized to the predicate universe
/// (millions of entries at paper scale); zeroing it per event would
/// dominate matching time.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{FulfilledSet, PredicateId};
///
/// let mut set = FulfilledSet::new();
/// set.begin(100);
/// set.insert(PredicateId::from_index(7));
/// set.insert(PredicateId::from_index(7)); // duplicates are ignored
/// assert!(set.contains(PredicateId::from_index(7)));
/// assert!(!set.contains(PredicateId::from_index(8)));
/// assert_eq!(set.len(), 1);
///
/// set.begin(100); // next event: O(1), nothing to clear
/// assert!(!set.contains(PredicateId::from_index(7)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FulfilledSet {
    ids: Vec<PredicateId>,
    stamps: Vec<u32>,
    generation: u32,
}

impl FulfilledSet {
    /// Creates an empty set. Call [`FulfilledSet::begin`] before use.
    pub fn new() -> Self {
        FulfilledSet {
            ids: Vec::new(),
            stamps: Vec::new(),
            generation: 0,
        }
    }

    /// Creates a set ready for a universe of `universe` predicate ids.
    pub fn with_universe(universe: usize) -> Self {
        let mut s = Self::new();
        s.begin(universe);
        s
    }

    /// Starts a new event: empties the set (in `O(1)`) and ensures ids
    /// up to `universe` can be inserted.
    pub fn begin(&mut self, universe: usize) {
        self.ids.clear();
        if self.stamps.len() < universe {
            self.stamps.resize(universe, 0);
        }
        if self.generation == u32::MAX {
            // Stamp wrap-around: one full reset every 2^32 events.
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Inserts a predicate id; duplicates are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe declared to
    /// [`FulfilledSet::begin`].
    pub fn insert(&mut self, id: PredicateId) {
        let stamp = &mut self.stamps[id.index()];
        if *stamp != self.generation {
            *stamp = self.generation;
            self.ids.push(id);
        }
    }

    /// Whether `id` is in the set. Ids outside the declared universe are
    /// reported as absent.
    pub fn contains(&self, id: PredicateId) -> bool {
        self.stamps
            .get(id.index())
            .is_some_and(|&s| s == self.generation)
    }

    /// The fulfilled ids, in insertion order.
    pub fn ids(&self) -> &[PredicateId] {
        &self.ids
    }

    /// Number of fulfilled predicates.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no predicates are fulfilled.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Builds a set directly from raw ids — how the figure benchmarks
    /// synthesize phase-1 output (the paper's experiments parameterise
    /// on "matching predicates per event" rather than concrete events).
    pub fn from_ids<I: IntoIterator<Item = PredicateId>>(ids: I, universe: usize) -> Self {
        let mut s = Self::with_universe(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Approximate heap bytes (scratch memory, counted separately from
    /// engine tables in [`crate::MemoryUsage`]).
    pub fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<PredicateId>() + self.stamps.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> PredicateId {
        PredicateId::from_index(i)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = FulfilledSet::with_universe(10);
        s.insert(id(3));
        s.insert(id(9));
        assert!(s.contains(id(3)));
        assert!(s.contains(id(9)));
        assert!(!s.contains(id(4)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), &[id(3), id(9)]);
    }

    #[test]
    fn duplicates_ignored() {
        let mut s = FulfilledSet::with_universe(10);
        s.insert(id(1));
        s.insert(id(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn begin_resets_in_o1() {
        let mut s = FulfilledSet::with_universe(10);
        s.insert(id(1));
        s.begin(10);
        assert!(s.is_empty());
        assert!(!s.contains(id(1)));
        s.insert(id(2));
        assert!(s.contains(id(2)));
    }

    #[test]
    fn universe_can_grow() {
        let mut s = FulfilledSet::with_universe(2);
        s.insert(id(1));
        s.begin(100);
        s.insert(id(99));
        assert!(s.contains(id(99)));
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = FulfilledSet::with_universe(5);
        assert!(!s.contains(id(1000)));
    }

    #[test]
    fn from_ids_builder() {
        let s = FulfilledSet::from_ids([id(0), id(2), id(0)], 5);
        assert_eq!(s.len(), 2);
        assert!(s.contains(id(0)));
        assert!(s.contains(id(2)));
        assert!(!s.contains(id(1)));
    }

    #[test]
    fn generation_wraparound_is_correct() {
        let mut s = FulfilledSet::with_universe(4);
        s.generation = u32::MAX - 1;
        s.begin(4);
        assert_eq!(s.generation, u32::MAX);
        s.insert(id(0));
        assert!(s.contains(id(0)));
        s.begin(4); // triggers the full reset path
        assert!(!s.contains(id(0)));
        s.insert(id(1));
        assert!(s.contains(id(1)));
        assert!(!s.contains(id(0)));
    }
}
