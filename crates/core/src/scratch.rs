//! Per-caller scratch state for matching, and the owning [`Matcher`]
//! convenience handle.
//!
//! The engines are **read-only during matching**: an event match only
//! consults the subscription index structures. Everything mutable per
//! event — generation-stamped candidate deduplication, hit counters,
//! the evaluator stack, the fulfilled set, the matched-id buffer —
//! lives in a [`MatchScratch`] owned by the *caller*. One engine can
//! therefore serve any number of concurrent matchers, each bringing
//! its own scratch (the broker keeps one per publisher thread).
//!
//! A single scratch may be reused across engines and engine kinds: all
//! buffers resize lazily to the engine at hand, and the stamp/hit
//! disciplines stay sound under sharing (stamps are compared against a
//! generation that is bumped on every match; hit counters are restored
//! to zero before a match returns).
//!
//! Shards skipped by content-aware pruning engage no scratch at all:
//! [`ShardedEngine`](crate::ShardedEngine)'s walk consults the shard's
//! attribute synopsis *before* checking a scratch out of the pool, so
//! a pruned shard costs neither a lease nor a buffer reset — its
//! `matched` output is simply absent from the merge.

use crate::eval::EvalFrame;
use crate::{FulfilledSet, SubscriptionId};

/// Reusable per-event mutable state for [`FilterEngine`] matching.
///
/// Create one per thread (or per call site) and pass it to
/// [`FilterEngine::phase2`] / [`FilterEngine::match_event`]; in steady
/// state matching is then allocation-free. See the
/// [module docs](self) for the sharing rules.
///
/// [`FilterEngine`]: crate::FilterEngine
/// [`FilterEngine::phase2`]: crate::FilterEngine::phase2
/// [`FilterEngine::match_event`]: crate::FilterEngine::match_event
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Generation-stamped marks, indexed by subscription (non-canonical
    /// candidate dedup) or by original subscription (counting match
    /// dedup). Entries are valid only when equal to `generation`.
    pub(crate) stamps: Vec<u32>,
    pub(crate) generation: u32,
    /// Candidate buffer: subscription indexes (non-canonical) or flat
    /// conjunction indexes (counting variant).
    pub(crate) candidates: Vec<u32>,
    /// Hit counters for the counting engines; all-zero between events.
    pub(crate) hit: Vec<u8>,
    /// Explicit evaluator stack for encoded-tree evaluation.
    pub(crate) eval_stack: Vec<EvalFrame>,
    /// Phase-1 output buffer used by `match_event`.
    pub(crate) fulfilled: FulfilledSet,
    /// Matched subscription ids of the most recent `match_event_into`,
    /// reused across events.
    pub(crate) matched: Vec<SubscriptionId>,
    /// Per-shard output buffer used by [`crate::ShardedEngine`] while
    /// `matched` accumulates the translated global ids.
    pub(crate) shard_matched: Vec<SubscriptionId>,
    /// Per-shard fulfilled-set buffer used by [`crate::ShardedEngine`]
    /// phase-2 to project a global fulfilled set onto one shard.
    pub(crate) shard_fulfilled: FulfilledSet,
}

impl MatchScratch {
    /// Creates an empty scratch; buffers grow lazily to the engines it
    /// is used with.
    pub fn new() -> Self {
        MatchScratch::default()
    }

    // lint: hot-path — matched-id access and local→global translation
    // run once per event on the delivery path.

    /// Matched subscription ids of the most recent
    /// [`match_event_into`](crate::FilterEngine::match_event_into), in
    /// unspecified order, without duplicates.
    pub fn matched(&self) -> &[SubscriptionId] {
        &self.matched
    }

    /// Rewrites the matched ids in place through `translate`, dropping
    /// ids it maps to `None` — the sharded fan-out's local → global
    /// translation, fed from the matched shard's own
    /// [`crate::ShardTranslation`] map (under whatever lock already
    /// guards that shard). A `None` means the subscription was retired
    /// (or migrated away) between matching and translation; delivery
    /// would have skipped it anyway, so it is filtered here, once,
    /// instead of at every consumer.
    pub fn translate_matched(
        &mut self,
        mut translate: impl FnMut(SubscriptionId) -> Option<SubscriptionId>,
    ) {
        self.matched.retain_mut(|id| match translate(*id) {
            Some(global) => {
                *id = global;
                true
            }
            None => false,
        });
    }

    // lint: end-hot-path

    /// Clears all per-event state while **keeping** every buffer's
    /// capacity — the hygiene step a scratch pool applies once per
    /// checkout. A reset scratch behaves exactly like a fresh one, but
    /// reusing it allocates nothing in steady state (see
    /// [`crate::ScratchPool`]).
    ///
    /// Most of the state is already self-restoring between matches
    /// (stamps are generation-guarded, hit counters return to zero
    /// before a match finishes), so this only clears the buffers whose
    /// logical length carries over.
    pub fn reset(&mut self) {
        self.candidates.clear();
        self.eval_stack.clear();
        self.matched.clear();
        self.shard_matched.clear();
    }

    /// Releases all buffers (capacity included). Matching against a
    /// much smaller engine afterwards will not pin the old high-water
    /// memory. Contrast with [`MatchScratch::reset`], which keeps
    /// capacity for reuse.
    pub fn trim(&mut self) {
        *self = MatchScratch::default();
    }

    /// Pre-sizes the buffers for `engine` so the first match does not
    /// pay the growth cost. Purely an optimisation: every buffer also
    /// resizes lazily inside `phase2`.
    pub fn ensure_capacity(&mut self, engine: &(impl crate::FilterEngine + ?Sized)) {
        let bound = engine.subscription_id_bound();
        if self.stamps.len() < bound {
            self.stamps.resize(bound, 0);
        }
        let units = engine.unit_slot_bound();
        if self.hit.len() < units {
            self.hit.resize(units, 0);
        }
        self.fulfilled.begin(engine.predicate_universe());
    }

    /// Approximate heap bytes held by the scratch buffers.
    pub fn heap_bytes(&self) -> usize {
        self.stamps.capacity() * 4
            + self.candidates.capacity() * 4
            + self.hit.capacity()
            + self.eval_stack.capacity() * std::mem::size_of::<EvalFrame>()
            + self.fulfilled.heap_bytes()
            + self.matched.capacity() * std::mem::size_of::<SubscriptionId>()
            + self.shard_matched.capacity() * std::mem::size_of::<SubscriptionId>()
            + self.shard_fulfilled.heap_bytes()
    }

    /// Starts a stamped pass over `slots` positions: ensures the stamp
    /// array covers them, bumps the generation (with wrap-around reset)
    /// and returns the fresh generation value.
    pub(crate) fn begin_stamps(&mut self, slots: usize) -> u32 {
        if self.stamps.len() < slots {
            self.stamps.resize(slots, 0);
        }
        if self.generation == u32::MAX {
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.generation
    }

    /// Ensures the hit vector covers `slots` counters (zero-filled).
    pub(crate) fn ensure_hit(&mut self, slots: usize) {
        if self.hit.len() < slots {
            self.hit.resize(slots, 0);
        }
    }
}

/// An engine bundled with its own [`MatchScratch`] — the convenience
/// handle for single-threaded owners (tests, benches, CLI tools) that
/// want the pre-redesign `&mut self` ergonomics back.
///
/// Derefs to the engine, so `subscribe`/`unsubscribe`/`phase1` and the
/// inspection methods are called directly on the matcher.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{EngineKind, Matcher};
/// use boolmatch_expr::Expr;
/// use boolmatch_types::Event;
///
/// let mut matcher = EngineKind::NonCanonical.build_matcher();
/// let id = matcher.subscribe(&Expr::parse("a = 1 and b = 2")?)?;
/// let event = Event::builder().attr("a", 1_i64).attr("b", 2_i64).build();
/// assert_eq!(matcher.match_event(&event).matched, vec![id]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Matcher<E> {
    engine: E,
    scratch: MatchScratch,
}

impl<E: crate::FilterEngine> Matcher<E> {
    /// Wraps `engine` with a fresh scratch.
    pub fn new(engine: E) -> Self {
        Matcher {
            engine,
            scratch: MatchScratch::new(),
        }
    }

    /// Both phases against the owned scratch; returns an owned result.
    pub fn match_event(&mut self, event: &boolmatch_types::Event) -> crate::MatchResult {
        self.engine.match_event(event, &mut self.scratch)
    }

    /// Both phases, leaving the ids in [`Matcher::matched`] — the
    /// allocation-free variant.
    pub fn match_event_into(&mut self, event: &boolmatch_types::Event) -> crate::MatchStats {
        self.engine.match_event_into(event, &mut self.scratch)
    }

    /// Phase 2 only, with the owned scratch.
    pub fn phase2(
        &mut self,
        fulfilled: &FulfilledSet,
        matched: &mut Vec<SubscriptionId>,
    ) -> crate::MatchStats {
        self.engine.phase2(fulfilled, &mut self.scratch, matched)
    }

    /// Matched ids of the most recent [`Matcher::match_event_into`].
    pub fn matched(&self) -> &[SubscriptionId] {
        self.scratch.matched()
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The wrapped engine, mutably.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// The owned scratch.
    pub fn scratch_mut(&mut self) -> &mut MatchScratch {
        &mut self.scratch
    }

    /// Unbundles the engine and scratch.
    pub fn into_parts(self) -> (E, MatchScratch) {
        (self.engine, self.scratch)
    }
}

impl<E> std::ops::Deref for Matcher<E> {
    type Target = E;

    fn deref(&self) -> &E {
        &self.engine
    }
}

impl<E> std::ops::DerefMut for Matcher<E> {
    fn deref_mut(&mut self) -> &mut E {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineKind, FilterEngine};
    use boolmatch_expr::Expr;
    use boolmatch_types::Event;

    #[test]
    fn scratch_is_shareable_across_engine_kinds() {
        // One scratch serving three engines of different kinds, in an
        // interleaved order: the stamp/hit disciplines must not leak
        // state between them.
        let mut engines: Vec<_> = EngineKind::ALL.iter().map(|k| k.build()).collect();
        let expr = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        for e in &mut engines {
            e.subscribe(&expr).unwrap();
        }
        let mut scratch = MatchScratch::new();
        let hit = Event::builder().attr("b", 2_i64).attr("c", 3_i64).build();
        let partial = Event::builder().attr("c", 3_i64).build();
        for _ in 0..3 {
            for e in &engines {
                assert_eq!(e.match_event(&hit, &mut scratch).matched.len(), 1);
                assert!(e.match_event(&partial, &mut scratch).matched.is_empty());
            }
        }
    }

    #[test]
    fn ensure_capacity_presizes() {
        let mut matcher = EngineKind::Counting.build_matcher();
        for i in 0..10 {
            let e = Expr::parse(&format!("(x{i} = 1 or y{i} = 2) and z{i} = 3")).unwrap();
            matcher.subscribe(&e).unwrap();
        }
        let mut scratch = MatchScratch::new();
        scratch.ensure_capacity(matcher.engine());
        assert!(scratch.stamps.len() >= 10);
        assert!(scratch.hit.len() >= 20, "flat slots: 2 per subscription");
        assert!(scratch.heap_bytes() > 0);

        // After unsubscribe churn the live unit count shrinks but the
        // slot space does not; pre-sizing must cover freed slots too,
        // because phase2 indexes the hit vector by slot.
        for i in 0..9 {
            matcher
                .unsubscribe(crate::SubscriptionId::from_index(i))
                .unwrap();
        }
        let mut churned = MatchScratch::new();
        churned.ensure_capacity(matcher.engine());
        assert!(
            churned.hit.len() >= 20,
            "hit sized to the slot bound ({}), not the live units",
            matcher.engine().unit_slot_bound()
        );

        // `reset` keeps capacity (pool hygiene); `trim` releases it.
        let before = scratch.heap_bytes();
        scratch.reset();
        assert_eq!(scratch.heap_bytes(), before, "reset keeps capacity");
        scratch.trim();
        assert_eq!(scratch.heap_bytes(), 0);
    }

    #[test]
    fn matched_accessor_reflects_last_match() {
        let mut matcher = EngineKind::NonCanonical.build_matcher();
        let id = matcher.subscribe(&Expr::parse("a = 1").unwrap()).unwrap();
        let stats = matcher.match_event_into(&Event::builder().attr("a", 1_i64).build());
        assert_eq!(stats.matched, 1);
        assert_eq!(matcher.matched(), &[id]);
        matcher.match_event_into(&Event::builder().attr("a", 2_i64).build());
        assert!(matcher.matched().is_empty());
    }

    #[test]
    fn translate_matched_rewrites_and_filters_in_place() {
        let mut scratch = MatchScratch::new();
        scratch.matched = vec![
            crate::SubscriptionId::from_index(0),
            crate::SubscriptionId::from_index(1),
            crate::SubscriptionId::from_index(2),
        ];
        // Shift live ids by 10; id 1 was retired concurrently.
        scratch.translate_matched(|id| {
            (id.index() != 1).then(|| crate::SubscriptionId::from_index(id.index() + 10))
        });
        assert_eq!(
            scratch.matched(),
            &[
                crate::SubscriptionId::from_index(10),
                crate::SubscriptionId::from_index(12)
            ]
        );
    }

    #[test]
    fn generation_wraparound_resets_stamps() {
        let mut scratch = MatchScratch::new();
        scratch.begin_stamps(4);
        scratch.stamps[2] = scratch.generation;
        scratch.generation = u32::MAX;
        let gen = scratch.begin_stamps(4);
        assert_eq!(gen, 1, "wrapped around");
        assert!(scratch.stamps.iter().all(|&s| s == 0), "stamps cleared");
    }
}
