//! Per-caller scratch state for matching, and the owning [`Matcher`]
//! convenience handle.
//!
//! The engines are **read-only during matching**: an event match only
//! consults the subscription index structures. Everything mutable per
//! event — generation-stamped candidate deduplication, hit counters,
//! the evaluator stack, the fulfilled set, the matched-id buffer —
//! lives in a [`MatchScratch`] owned by the *caller*. One engine can
//! therefore serve any number of concurrent matchers, each bringing
//! its own scratch (the broker keeps one per publisher thread).
//!
//! A single scratch may be reused across engines and engine kinds: all
//! buffers resize lazily to the engine at hand, and the stamp/hit
//! disciplines stay sound under sharing (stamps are compared against a
//! generation that is bumped on every match; hit counters are restored
//! to zero before a match returns).
//!
//! Shards skipped by content-aware pruning engage no scratch at all:
//! [`ShardedEngine`](crate::ShardedEngine)'s walk consults the shard's
//! attribute synopsis *before* checking a scratch out of the pool, so
//! a pruned shard costs neither a lease nor a buffer reset — its
//! `matched` output is simply absent from the merge.

use crate::eval::EvalFrame;
use crate::{FulfilledSet, SubscriptionId};

/// Lane width of the batch kernels: [`crate::FilterEngine::match_batch`]
/// processes events in chunks of at most `LANE_WIDTH` lanes. 64 keeps a
/// matching unit's transposed hit-lane row within one cache line and
/// makes the per-predicate lane set a single `u64` mask.
pub(crate) const LANE_WIDTH: usize = 64;

/// Reusable per-event mutable state for [`FilterEngine`] matching.
///
/// Create one per thread (or per call site) and pass it to
/// [`FilterEngine::phase2`] / [`FilterEngine::match_event`]; in steady
/// state matching is then allocation-free. See the
/// [module docs](self) for the sharing rules.
///
/// [`FilterEngine`]: crate::FilterEngine
/// [`FilterEngine::phase2`]: crate::FilterEngine::phase2
/// [`FilterEngine::match_event`]: crate::FilterEngine::match_event
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Generation-stamped marks, indexed by subscription (non-canonical
    /// candidate dedup) or by original subscription (counting match
    /// dedup). Entries are valid only when equal to `generation`.
    pub(crate) stamps: Vec<u32>,
    pub(crate) generation: u32,
    /// Candidate buffer: subscription indexes (non-canonical) or flat
    /// conjunction indexes (counting variant).
    pub(crate) candidates: Vec<u32>,
    /// Hit counters for the counting engines; all-zero between events.
    pub(crate) hit: Vec<u8>,
    /// Explicit evaluator stack for encoded-tree evaluation.
    pub(crate) eval_stack: Vec<EvalFrame>,
    /// Phase-1 output buffer used by `match_event`.
    pub(crate) fulfilled: FulfilledSet,
    /// Matched subscription ids of the most recent `match_event_into`,
    /// reused across events.
    pub(crate) matched: Vec<SubscriptionId>,
    /// Per-shard output buffer used by [`crate::ShardedEngine`] while
    /// `matched` accumulates the translated global ids.
    pub(crate) shard_matched: Vec<SubscriptionId>,
    /// Per-shard fulfilled-set buffer used by [`crate::ShardedEngine`]
    /// phase-2 to project a global fulfilled set onto one shard.
    pub(crate) shard_fulfilled: FulfilledSet,
}

impl MatchScratch {
    /// Creates an empty scratch; buffers grow lazily to the engines it
    /// is used with.
    pub fn new() -> Self {
        MatchScratch::default()
    }

    // lint: hot-path — matched-id access and local→global translation
    // run once per event on the delivery path.

    /// Matched subscription ids of the most recent
    /// [`match_event_into`](crate::FilterEngine::match_event_into), in
    /// unspecified order, without duplicates.
    pub fn matched(&self) -> &[SubscriptionId] {
        &self.matched
    }

    /// Rewrites the matched ids in place through `translate`, dropping
    /// ids it maps to `None` — the sharded fan-out's local → global
    /// translation, fed from the matched shard's own
    /// [`crate::ShardTranslation`] map (under whatever lock already
    /// guards that shard). A `None` means the subscription was retired
    /// (or migrated away) between matching and translation; delivery
    /// would have skipped it anyway, so it is filtered here, once,
    /// instead of at every consumer.
    pub fn translate_matched(
        &mut self,
        mut translate: impl FnMut(SubscriptionId) -> Option<SubscriptionId>,
    ) {
        self.matched.retain_mut(|id| match translate(*id) {
            Some(global) => {
                *id = global;
                true
            }
            None => false,
        });
    }

    // lint: end-hot-path

    /// Clears all per-event state while **keeping** every buffer's
    /// capacity — the hygiene step a scratch pool applies once per
    /// checkout. A reset scratch behaves exactly like a fresh one, but
    /// reusing it allocates nothing in steady state (see
    /// [`crate::ScratchPool`]).
    ///
    /// Most of the state is already self-restoring between matches
    /// (stamps are generation-guarded, hit counters return to zero
    /// before a match finishes), so this only clears the buffers whose
    /// logical length carries over.
    pub fn reset(&mut self) {
        self.candidates.clear();
        self.eval_stack.clear();
        self.matched.clear();
        self.shard_matched.clear();
    }

    /// Releases all buffers (capacity included). Matching against a
    /// much smaller engine afterwards will not pin the old high-water
    /// memory. Contrast with [`MatchScratch::reset`], which keeps
    /// capacity for reuse.
    pub fn trim(&mut self) {
        *self = MatchScratch::default();
    }

    /// Pre-sizes the buffers for `engine` so the first match does not
    /// pay the growth cost. Purely an optimisation: every buffer also
    /// resizes lazily inside `phase2`.
    pub fn ensure_capacity(&mut self, engine: &(impl crate::FilterEngine + ?Sized)) {
        let bound = engine.subscription_id_bound();
        if self.stamps.len() < bound {
            self.stamps.resize(bound, 0);
        }
        let units = engine.unit_slot_bound();
        if self.hit.len() < units {
            self.hit.resize(units, 0);
        }
        self.fulfilled.begin(engine.predicate_universe());
    }

    /// Approximate heap bytes held by the scratch buffers.
    pub fn heap_bytes(&self) -> usize {
        self.stamps.capacity() * 4
            + self.candidates.capacity() * 4
            + self.hit.capacity()
            + self.eval_stack.capacity() * std::mem::size_of::<EvalFrame>()
            + self.fulfilled.heap_bytes()
            + self.matched.capacity() * std::mem::size_of::<SubscriptionId>()
            + self.shard_matched.capacity() * std::mem::size_of::<SubscriptionId>()
            + self.shard_fulfilled.heap_bytes()
    }

    /// Starts a stamped pass over `slots` positions: ensures the stamp
    /// array covers them, bumps the generation (with wrap-around reset)
    /// and returns the fresh generation value.
    pub(crate) fn begin_stamps(&mut self, slots: usize) -> u32 {
        if self.stamps.len() < slots {
            self.stamps.resize(slots, 0);
        }
        if self.generation == u32::MAX {
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.generation
    }

    /// Ensures the hit vector covers `slots` counters (zero-filled).
    pub(crate) fn ensure_hit(&mut self, slots: usize) {
        if self.hit.len() < slots {
            self.hit.resize(slots, 0);
        }
    }
}

/// Reusable struct-of-arrays state for
/// [`crate::FilterEngine::match_batch`]: width-`B` lanes over the
/// engine's hot tables, plus per-event output buffers.
///
/// The batch kernels process events in chunks of at most 64 lanes (one
/// `u64` mask per predicate; one cache line of hit counters per flat
/// conjunction). The transposed *hit lanes* put the `B` counters of one
/// matching unit at `unit * 64 + lane`, so one predicate-table posting
/// touches `B` contiguous bytes and the count vector is read once per
/// chunk instead of once per event. Like [`MatchScratch`], all buffers
/// resize lazily to the engine at hand and are restored to their
/// between-batches state (lanes all zero, marks all zero) before a
/// batch returns, so one batch scratch may serve any number of engines
/// and engine kinds.
///
/// Pools apply the same hygiene pair as for [`MatchScratch`]:
/// [`BatchScratch::reset`] + [`BatchScratch::ensure_capacity`] once per
/// checkout.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use boolmatch_core::{BatchScratch, EngineKind, FilterEngine};
/// use boolmatch_expr::Expr;
/// use boolmatch_types::Event;
///
/// let mut engine = EngineKind::Counting.build();
/// let id = engine.subscribe(&Expr::parse("a = 1 and b = 2")?)?;
/// let events = vec![
///     Arc::new(Event::builder().attr("a", 1_i64).attr("b", 2_i64).build()),
///     Arc::new(Event::builder().attr("a", 1_i64).build()),
/// ];
/// let mut batch = BatchScratch::new();
/// let stats = engine.match_batch(&events, &[], &mut batch);
/// assert_eq!(batch.matched(0), &[id]);
/// assert!(batch.matched(1).is_empty());
/// assert_eq!(stats.batch_events, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Embedded per-event scratch: supplies the shared evaluator stack
    /// and stamp space, and carries the scalar fallback — single-event
    /// chunks delegate to
    /// [`match_event_into`](crate::FilterEngine::match_event_into), so
    /// `B = 1` batches run the byte-identical scalar path.
    pub(crate) scalar: MatchScratch,
    /// Per-lane phase-1 outputs ([`LANE_WIDTH`] sets, reused per chunk).
    pub(crate) fulfilled: Vec<FulfilledSet>,
    /// Transposed hit lanes: the counter of (flat unit, lane) lives at
    /// `unit * LANE_WIDTH + lane`. All-zero between batches — the scan
    /// restores them, exactly like `MatchScratch::hit`.
    pub(crate) lanes: Vec<u8>,
    /// Per-(subscription, lane) dedup marks at
    /// `sub * LANE_WIDTH + lane`; set while a chunk collects output and
    /// cleared back through the output lists before the chunk ends.
    pub(crate) marks: Vec<u8>,
    /// Distinct predicates fulfilled by any lane of the current chunk,
    /// in first-seen order.
    pub(crate) union_ids: Vec<u32>,
    /// Lane bitmask per union predicate, parallel to `union_ids`.
    pub(crate) union_mask: Vec<u64>,
    /// Generation-stamped predicate → union-row map (sized to the
    /// predicate universe).
    pub(crate) pred_stamps: Vec<u32>,
    pub(crate) pred_rows: Vec<u32>,
    pub(crate) pred_generation: u32,
    /// Per-lane candidate buffers: subscription indexes touched per
    /// lane (non-canonical kernel).
    pub(crate) candidates: Vec<Vec<u32>>,
    /// Chunk-global candidate units (counting variant): every flat
    /// conjunction touched by any lane of the current chunk, in
    /// first-touch order. Global rather than per-lane so the scan can
    /// stream each touched lane region once instead of striding one
    /// cache line per (candidate, lane).
    pub(crate) unit_candidates: Vec<u32>,
    /// Generation-stamped flat-unit → touched map backing the
    /// candidate dedup; shares `pred_generation` with the predicate
    /// stamps.
    pub(crate) unit_stamps: Vec<u32>,
    /// Per-event matched ids — the output of the most recent
    /// [`crate::FilterEngine::match_batch`], indexed by event position.
    pub(crate) matched: Vec<Vec<SubscriptionId>>,
    /// Per-event accumulator of translated global ids, used by
    /// [`crate::ShardedEngine`] while `matched` carries one shard's
    /// local output.
    pub(crate) shard_matched: Vec<Vec<SubscriptionId>>,
    /// Per-event skip flags a sharded walk derives per shard (caller
    /// skips OR-ed with the shard synopsis verdicts).
    pub(crate) shard_skip: Vec<bool>,
}

impl BatchScratch {
    /// Creates an empty batch scratch; buffers grow lazily to the
    /// engines and batch widths it is used with.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Matched subscription ids of event `event` (its position in the
    /// `events` slice) from the most recent
    /// [`crate::FilterEngine::match_batch`], without duplicates. Within
    /// one event the order is unspecified — the per-event scalar walk
    /// and the lane kernels may discover the same set in different
    /// orders.
    ///
    /// # Panics
    ///
    /// Panics if `event` is outside the most recent batch.
    pub fn matched(&self, event: usize) -> &[SubscriptionId] {
        &self.matched[event]
    }

    /// Clears all per-batch state while keeping every buffer's capacity
    /// — the hygiene step a pool applies once per checkout, mirroring
    /// [`MatchScratch::reset`]. Lanes and marks are already
    /// self-restoring between batches and are left alone.
    pub fn reset(&mut self) {
        self.scalar.reset();
        self.union_ids.clear();
        self.union_mask.clear();
        for c in &mut self.candidates {
            c.clear();
        }
        self.unit_candidates.clear();
        for m in &mut self.matched {
            m.clear();
        }
        for m in &mut self.shard_matched {
            m.clear();
        }
        self.shard_skip.clear();
    }

    /// Releases all buffers (capacity included); the batch analogue of
    /// [`MatchScratch::trim`].
    pub fn trim(&mut self) {
        *self = BatchScratch::default();
    }

    /// Pre-sizes the buffers for `engine` so the first batch does not
    /// pay the growth cost. Purely an optimisation: every buffer also
    /// resizes lazily inside the batch kernels.
    pub fn ensure_capacity(&mut self, engine: &(impl crate::FilterEngine + ?Sized)) {
        self.scalar.ensure_capacity(engine);
        self.ensure_lanes(engine.unit_slot_bound());
        self.ensure_marks(engine.subscription_id_bound());
        let universe = engine.predicate_universe();
        if self.pred_stamps.len() < universe {
            self.pred_stamps.resize(universe, 0);
            self.pred_rows.resize(universe, 0);
        }
        self.ensure_chunk_buffers();
    }

    /// Approximate heap bytes held by the batch buffers (the embedded
    /// scalar scratch included).
    pub fn heap_bytes(&self) -> usize {
        let nested_vec = |vs: &Vec<Vec<u32>>| {
            vs.iter().map(|v| v.capacity() * 4).sum::<usize>()
                + vs.capacity() * std::mem::size_of::<Vec<u32>>()
        };
        let nested_ids = |vs: &Vec<Vec<SubscriptionId>>| {
            vs.iter()
                .map(|v| v.capacity() * std::mem::size_of::<SubscriptionId>())
                .sum::<usize>()
                + vs.capacity() * std::mem::size_of::<Vec<SubscriptionId>>()
        };
        self.scalar.heap_bytes()
            + self
                .fulfilled
                .iter()
                .map(FulfilledSet::heap_bytes)
                .sum::<usize>()
            + self.fulfilled.capacity() * std::mem::size_of::<FulfilledSet>()
            + self.lanes.capacity()
            + self.marks.capacity()
            + self.union_ids.capacity() * 4
            + self.union_mask.capacity() * 8
            + self.pred_stamps.capacity() * 4
            + self.pred_rows.capacity() * 4
            + nested_vec(&self.candidates)
            + self.unit_candidates.capacity() * 4
            + self.unit_stamps.capacity() * 4
            + nested_ids(&self.matched)
            + nested_ids(&self.shard_matched)
            + self.shard_skip.capacity()
    }

    /// Sizes and clears the per-event output buffers for a batch of
    /// `events` events. Every batch entry point calls this first.
    pub(crate) fn begin_batch(&mut self, events: usize) {
        if self.matched.len() < events {
            self.matched.resize_with(events, Vec::new);
        }
        for m in self.matched.iter_mut().take(events) {
            m.clear();
        }
    }

    /// Ensures the hit lanes cover `slots` matching units
    /// (zero-filled).
    pub(crate) fn ensure_lanes(&mut self, slots: usize) {
        let need = slots * LANE_WIDTH;
        if self.lanes.len() < need {
            self.lanes.resize(need, 0);
        }
        if self.unit_stamps.len() < slots {
            self.unit_stamps.resize(slots, 0);
        }
    }

    /// Ensures the dedup marks cover `slots` subscriptions
    /// (zero-filled).
    pub(crate) fn ensure_marks(&mut self, slots: usize) {
        let need = slots * LANE_WIDTH;
        if self.marks.len() < need {
            self.marks.resize(need, 0);
        }
    }

    /// Ensures the per-lane chunk buffers (fulfilled sets, candidate
    /// lists) exist for every lane.
    pub(crate) fn ensure_chunk_buffers(&mut self) {
        if self.fulfilled.len() < LANE_WIDTH {
            self.fulfilled.resize_with(LANE_WIDTH, FulfilledSet::new);
        }
        if self.candidates.len() < LANE_WIDTH {
            self.candidates.resize_with(LANE_WIDTH, Vec::new);
        }
    }

    /// Starts a stamped union pass over a predicate universe of
    /// `universe` ids: clears the union rows, ensures the stamp map
    /// covers the universe, bumps the generation (with wrap-around
    /// reset) and returns the fresh generation value.
    pub(crate) fn begin_union(&mut self, universe: usize) -> u32 {
        self.union_ids.clear();
        self.union_mask.clear();
        if self.pred_stamps.len() < universe {
            self.pred_stamps.resize(universe, 0);
            self.pred_rows.resize(universe, 0);
        }
        if self.pred_generation == u32::MAX {
            self.pred_stamps.fill(0);
            self.unit_stamps.fill(0);
            self.pred_generation = 0;
        }
        self.pred_generation += 1;
        self.pred_generation
    }
}

/// An engine bundled with its own [`MatchScratch`] — the convenience
/// handle for single-threaded owners (tests, benches, CLI tools) that
/// want the pre-redesign `&mut self` ergonomics back.
///
/// Derefs to the engine, so `subscribe`/`unsubscribe`/`phase1` and the
/// inspection methods are called directly on the matcher.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{EngineKind, Matcher};
/// use boolmatch_expr::Expr;
/// use boolmatch_types::Event;
///
/// let mut matcher = EngineKind::NonCanonical.build_matcher();
/// let id = matcher.subscribe(&Expr::parse("a = 1 and b = 2")?)?;
/// let event = Event::builder().attr("a", 1_i64).attr("b", 2_i64).build();
/// assert_eq!(matcher.match_event(&event).matched, vec![id]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Matcher<E> {
    engine: E,
    scratch: MatchScratch,
}

impl<E: crate::FilterEngine> Matcher<E> {
    /// Wraps `engine` with a fresh scratch.
    pub fn new(engine: E) -> Self {
        Matcher {
            engine,
            scratch: MatchScratch::new(),
        }
    }

    /// Both phases against the owned scratch; returns an owned result.
    pub fn match_event(&mut self, event: &boolmatch_types::Event) -> crate::MatchResult {
        self.engine.match_event(event, &mut self.scratch)
    }

    /// Both phases, leaving the ids in [`Matcher::matched`] — the
    /// allocation-free variant.
    pub fn match_event_into(&mut self, event: &boolmatch_types::Event) -> crate::MatchStats {
        self.engine.match_event_into(event, &mut self.scratch)
    }

    /// Phase 2 only, with the owned scratch.
    pub fn phase2(
        &mut self,
        fulfilled: &FulfilledSet,
        matched: &mut Vec<SubscriptionId>,
    ) -> crate::MatchStats {
        self.engine.phase2(fulfilled, &mut self.scratch, matched)
    }

    /// Matched ids of the most recent [`Matcher::match_event_into`].
    pub fn matched(&self) -> &[SubscriptionId] {
        self.scratch.matched()
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The wrapped engine, mutably.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// The owned scratch.
    pub fn scratch_mut(&mut self) -> &mut MatchScratch {
        &mut self.scratch
    }

    /// Unbundles the engine and scratch.
    pub fn into_parts(self) -> (E, MatchScratch) {
        (self.engine, self.scratch)
    }
}

impl<E> std::ops::Deref for Matcher<E> {
    type Target = E;

    fn deref(&self) -> &E {
        &self.engine
    }
}

impl<E> std::ops::DerefMut for Matcher<E> {
    fn deref_mut(&mut self) -> &mut E {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineKind, FilterEngine};
    use boolmatch_expr::Expr;
    use boolmatch_types::Event;

    #[test]
    fn scratch_is_shareable_across_engine_kinds() {
        // One scratch serving three engines of different kinds, in an
        // interleaved order: the stamp/hit disciplines must not leak
        // state between them.
        let mut engines: Vec<_> = EngineKind::ALL.iter().map(|k| k.build()).collect();
        let expr = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        for e in &mut engines {
            e.subscribe(&expr).unwrap();
        }
        let mut scratch = MatchScratch::new();
        let hit = Event::builder().attr("b", 2_i64).attr("c", 3_i64).build();
        let partial = Event::builder().attr("c", 3_i64).build();
        for _ in 0..3 {
            for e in &engines {
                assert_eq!(e.match_event(&hit, &mut scratch).matched.len(), 1);
                assert!(e.match_event(&partial, &mut scratch).matched.is_empty());
            }
        }
    }

    #[test]
    fn batch_scratch_is_shareable_across_engine_kinds() {
        // One batch scratch serving three engines of different kinds:
        // the lane/mark self-restore discipline must not leak state.
        let mut engines: Vec<_> = EngineKind::ALL.iter().map(|k| k.build()).collect();
        let expr = Expr::parse("(a = 1 or b = 2) and c = 3").unwrap();
        for e in &mut engines {
            e.subscribe(&expr).unwrap();
        }
        let mut batch = BatchScratch::new();
        let events: Vec<std::sync::Arc<Event>> = (0..70)
            .map(|i| {
                std::sync::Arc::new(if i % 2 == 0 {
                    Event::builder().attr("b", 2_i64).attr("c", 3_i64).build()
                } else {
                    Event::builder().attr("c", 3_i64).build()
                })
            })
            .collect();
        for _ in 0..3 {
            for e in &engines {
                e.match_batch(&events, &[], &mut batch);
                for (i, _) in events.iter().enumerate() {
                    assert_eq!(batch.matched(i).len(), usize::from(i % 2 == 0), "event {i}");
                }
            }
        }
    }

    #[test]
    fn batch_scratch_reset_keeps_capacity_trim_releases() {
        let mut engine = EngineKind::Counting.build();
        for i in 0..20 {
            engine
                .subscribe(&Expr::parse(&format!("(x{i} = 1 or y{i} = 2) and z{i} = 3")).unwrap())
                .unwrap();
        }
        let mut batch = BatchScratch::new();
        assert_eq!(batch.heap_bytes(), 0);
        let events: Vec<std::sync::Arc<Event>> = (0..80)
            .map(|_| std::sync::Arc::new(Event::builder().attr("x0", 1_i64).build()))
            .collect();
        engine.match_batch(&events, &[], &mut batch);
        let grown = batch.heap_bytes();
        assert!(grown > 0);
        // The hygiene pair is allocation-neutral once warm.
        batch.reset();
        batch.ensure_capacity(&engine);
        let warm = batch.heap_bytes();
        assert!(warm >= grown);
        batch.reset();
        batch.ensure_capacity(&engine);
        assert_eq!(batch.heap_bytes(), warm);
        batch.trim();
        assert_eq!(batch.heap_bytes(), 0);
    }

    #[test]
    fn batch_scratch_ensure_capacity_presizes_lanes() {
        let mut engine = EngineKind::CountingVariant.build();
        for i in 0..5 {
            engine
                .subscribe(&Expr::parse(&format!("a{i} = 1 and b{i} = 2")).unwrap())
                .unwrap();
        }
        let mut batch = BatchScratch::new();
        batch.ensure_capacity(&engine);
        assert!(batch.lanes.len() >= engine.unit_slot_bound() * LANE_WIDTH);
        assert!(batch.marks.len() >= engine.subscription_id_bound() * LANE_WIDTH);
        assert_eq!(batch.fulfilled.len(), LANE_WIDTH);
        assert_eq!(batch.candidates.len(), LANE_WIDTH);
    }

    #[test]
    fn batch_union_generation_wraparound() {
        let mut batch = BatchScratch::new();
        batch.pred_generation = u32::MAX - 1;
        let g1 = batch.begin_union(4);
        assert_eq!(g1, u32::MAX);
        // The wrap resets the stamp plane instead of aliasing stale
        // generations.
        batch.pred_stamps.fill(g1);
        let g2 = batch.begin_union(4);
        assert_eq!(g2, 1);
        assert!(batch.pred_stamps.iter().all(|&s| s == 0));
    }

    #[test]
    fn ensure_capacity_presizes() {
        let mut matcher = EngineKind::Counting.build_matcher();
        for i in 0..10 {
            let e = Expr::parse(&format!("(x{i} = 1 or y{i} = 2) and z{i} = 3")).unwrap();
            matcher.subscribe(&e).unwrap();
        }
        let mut scratch = MatchScratch::new();
        scratch.ensure_capacity(matcher.engine());
        assert!(scratch.stamps.len() >= 10);
        assert!(scratch.hit.len() >= 20, "flat slots: 2 per subscription");
        assert!(scratch.heap_bytes() > 0);

        // After unsubscribe churn the live unit count shrinks but the
        // slot space does not; pre-sizing must cover freed slots too,
        // because phase2 indexes the hit vector by slot.
        for i in 0..9 {
            matcher
                .unsubscribe(crate::SubscriptionId::from_index(i))
                .unwrap();
        }
        let mut churned = MatchScratch::new();
        churned.ensure_capacity(matcher.engine());
        assert!(
            churned.hit.len() >= 20,
            "hit sized to the slot bound ({}), not the live units",
            matcher.engine().unit_slot_bound()
        );

        // `reset` keeps capacity (pool hygiene); `trim` releases it.
        let before = scratch.heap_bytes();
        scratch.reset();
        assert_eq!(scratch.heap_bytes(), before, "reset keeps capacity");
        scratch.trim();
        assert_eq!(scratch.heap_bytes(), 0);
    }

    #[test]
    fn matched_accessor_reflects_last_match() {
        let mut matcher = EngineKind::NonCanonical.build_matcher();
        let id = matcher.subscribe(&Expr::parse("a = 1").unwrap()).unwrap();
        let stats = matcher.match_event_into(&Event::builder().attr("a", 1_i64).build());
        assert_eq!(stats.matched, 1);
        assert_eq!(matcher.matched(), &[id]);
        matcher.match_event_into(&Event::builder().attr("a", 2_i64).build());
        assert!(matcher.matched().is_empty());
    }

    #[test]
    fn translate_matched_rewrites_and_filters_in_place() {
        let mut scratch = MatchScratch::new();
        scratch.matched = vec![
            crate::SubscriptionId::from_index(0),
            crate::SubscriptionId::from_index(1),
            crate::SubscriptionId::from_index(2),
        ];
        // Shift live ids by 10; id 1 was retired concurrently.
        scratch.translate_matched(|id| {
            (id.index() != 1).then(|| crate::SubscriptionId::from_index(id.index() + 10))
        });
        assert_eq!(
            scratch.matched(),
            &[
                crate::SubscriptionId::from_index(10),
                crate::SubscriptionId::from_index(12)
            ]
        );
    }

    #[test]
    fn generation_wraparound_resets_stamps() {
        let mut scratch = MatchScratch::new();
        scratch.begin_stamps(4);
        scratch.stamps[2] = scratch.generation;
        scratch.generation = u32::MAX;
        let gen = scratch.begin_stamps(4);
        assert_eq!(gen, 1, "wrapped around");
        assert!(scratch.stamps.iter().all(|&s| s == 0), "stamps cleared");
    }
}
