//! Subscription routing for the sharded matching core: the write-side
//! [`SubscriptionDirectory`] placement table, the per-shard
//! [`ShardTranslation`] reverse maps matching reads, and the stride
//! [`PredicateRouter`] for per-shard predicate id spaces.
//!
//! Through PR 3 the global ↔ `(shard, local)` subscription mapping was
//! pure arithmetic — stride interleaving, `global = local·S + shard`.
//! PR 4 replaced the arithmetic with one broker-global indirection
//! table so ids could stay stable while placement moved (live
//! migration, resizing) — but that table then sat on the publish hot
//! path: every publish took the directory's read lock, per shard per
//! event, just to translate matched local ids. This module is the
//! split that takes it back off:
//!
//! * [`SubscriptionDirectory`] is now **write-side only**: the slot map
//!   from global subscription id to `(shard, local)` placement (plus
//!   the stored expression live migration re-subscribes), the free
//!   list, the per-shard load counts placement plans against, and the
//!   placement cursor. It is touched by subscribe, unsubscribe,
//!   migration and resizing — never by matching.
//! * [`ShardTranslation`] is the **read-side** local → global reverse
//!   map, one per shard, owned next to that shard's engine and read
//!   under the shard's own lock. Matching translates its matched local
//!   ids through the shard it just matched — no shared state beyond
//!   the lock it already holds. Registration and migration update only
//!   the (one or two) involved shards' maps.
//! * Global ids are **generation-tagged** ([`crate::SubscriptionId`]
//!   packs `generation ⊕ slot`): a directory in
//!   [recycled-ids](SubscriptionDirectory::with_recycled_ids) mode
//!   reissues a retired slot under its next generation, so a stale id
//!   can never alias the slot's new owner (the ABA hazard that used to
//!   keep bounded recycling engine-only). Arrival-order directories
//!   issue generation 0 and ids remain the dense indexes a flat engine
//!   would assign.
//!
//! Predicate ids are *not* in the directory: predicates are interned
//! per shard, never migrate individually, and only surface through the
//! transient standalone `phase1`/`phase2` API. They keep the cheap
//! stride arithmetic in [`PredicateRouter`], rebuilt when the shard
//! count changes (a global predicate id is only meaningful between a
//! `phase1`/`phase2` pair with no intervening resize).

use std::sync::Arc;

use boolmatch_expr::Expr;

use crate::{PredicateId, SubscriptionId};

/// The canonical [lockdep](parking_lot::lockdep) class names for the
/// sharded matching core and the broker built on it — the single place
/// the locking discipline's vocabulary is spelled, so the class a lock
/// registers under and the class the docs/lint talk about cannot
/// drift apart.
///
/// The discipline (checked at runtime by the debug-build lockdep in the
/// `parking_lot` shim, and statically by `invariant-lint`):
///
/// * [`MAINTENANCE`] is outermost — one control-plane operation at a
///   time.
/// * [`shard`]`(i)` locks nest only in ascending index order.
/// * [`DIRECTORY`] is innermost — acquired only while holding at most
///   shard locks, never the other way around.
/// * [`POOL`] and [`SENDERS`] are leaves: never held across another
///   classed acquisition (pool slots are `try_lock`-only on the hot
///   path; the senders map is read during delivery holding nothing
///   else).
pub mod lock_classes {
    /// The write-side placement directory — innermost.
    pub const DIRECTORY: &str = "directory";
    /// The broker's control-plane serialization lock — outermost.
    pub const MAINTENANCE: &str = "maintenance";
    /// Worker/scratch/fan-out pool slot locks — leaf, try-lock on the
    /// hot path.
    pub const POOL: &str = "pool";
    /// The broker's subscriber-sender map — leaf, read during delivery.
    pub const SENDERS: &str = "senders";
    /// Per-subscriber delivery queues share [`DELIVERY_QUEUE_GROUPS`]
    /// lock classes (grouped by subscription-id index) instead of one
    /// class per queue: lockdep's graph stays small while same-class
    /// nesting inside a group still catches any path that ever holds
    /// two queue locks at once — no broker path may.
    pub const DELIVERY_QUEUE_GROUPS: usize = 8;
    /// The class name for shard `index`'s state lock; ascending-index
    /// nesting only.
    pub fn shard(index: usize) -> String {
        format!("shard[{index}]")
    }
    /// The class name for the delivery-queue group a subscription id
    /// falls in — a leaf below the sender-map read lock: enqueue and
    /// drain take exactly one queue lock and nothing under it.
    pub fn delivery_queue(index: usize) -> String {
        format!("delivery-queue[{}]", index % DELIVERY_QUEUE_GROUPS)
    }
}

/// Reverse-map sentinel: this local slot holds no live subscription.
/// `u64::MAX` is unreachable as a packed id (slot `u32::MAX` is never
/// issued — see [`SubscriptionDirectory`]'s commit).
const NO_GLOBAL: u64 = u64::MAX;

/// Subscriptions a clustered shard may hold beyond twice its fair share
/// before [`SubscriptionDirectory::place_clustered`] falls back to
/// least-loaded placement. The slack lets clusters form on a young
/// (near-empty) directory, where the fair share rounds to zero.
const CLUSTER_LOAD_SLACK: usize = 8;

/// How a sharded engine or broker picks the shard a new subscription
/// lands on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Least-loaded shard, ties broken round-robin — the default, and
    /// the policy every pre-existing load-balance guarantee is stated
    /// against. See [`SubscriptionDirectory::place`].
    #[default]
    LeastLoaded,
    /// Route each subscription to the shard specialised in its
    /// **dominant equality attribute** (deterministic hash of the
    /// attribute name), falling back to least-loaded when the
    /// subscription has no required equality conjunct or the preferred
    /// shard is over the load cap. Co-locating similar subscriptions is
    /// what makes synopsis pruning effective: events touching one
    /// attribute population then admit one or two shards instead of
    /// all of them. See [`SubscriptionDirectory::place_clustered`].
    ClusterByAttribute,
}

/// Where one live subscription currently lives.
#[derive(Debug, Clone)]
struct Placement {
    shard: u32,
    local: u32,
    /// What commit charged to the directory's expression-heap estimate
    /// for this entry — recorded so retire releases exactly that
    /// amount, regardless of how the `Arc`'s reference count has
    /// changed since (a migrator's transient clone must not skew the
    /// accounting).
    charged_bytes: u32,
    /// The registered expression, kept so live migration can
    /// re-subscribe it on a target shard.
    expr: Arc<Expr>,
}

/// One global-id slot: the generation it is currently on, plus the
/// placement when live.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// Bumped on every retire, so a recycled reissue is tagged with a
    /// generation no prior holder of this slot ever saw.
    generation: u32,
    placement: Option<Placement>,
}

/// The write-side placement directory of a sharded engine or broker:
/// global subscription id → `(shard, local id)` placement, with a free
/// list of retired slots and the per-shard load counts placement and
/// rebalancing plan against.
///
/// The directory is deliberately **not** on the matching path: matched
/// local ids are translated through each shard's own
/// [`ShardTranslation`], which lives with the shard and is read under
/// the shard's existing lock. Only subscribe / unsubscribe / migrate /
/// resize touch the directory.
///
/// # Id-stability contract
///
/// A subscription's **global id never changes** while it is registered:
/// [`SubscriptionDirectory::relocate`] (live migration) and shard-count
/// changes rewrite only the placement behind the id. By default ids are
/// issued in arrival order and never reused — the *n*-th committed
/// subscription gets global id *n*, the same id an unsharded engine
/// would assign — so sharded and flat matched-id sets stay directly
/// comparable even across migration and resizing.
/// [`SubscriptionDirectory::with_recycled_ids`] trades that alignment
/// for a bounded table: retired slots are then reissued LIFO from the
/// free list, each reissue generation-tagged
/// ([`SubscriptionId::generation`]) so stale ids from earlier
/// occupancies of the slot stay distinguishable — and rejectable —
/// forever.
///
/// # Placement protocol
///
/// Registration is a two-step dance so callers can run the engine's own
/// `subscribe` (which may fail) between the steps without the
/// directory lock held:
///
/// 1. [`SubscriptionDirectory::place`] picks the least-loaded shard and
///    **reserves** a unit of load on it (so concurrent placers spread
///    out instead of dog-piling the same shard);
/// 2. [`SubscriptionDirectory::commit`] records the engine-assigned
///    local id and issues the global id — or
///    [`SubscriptionDirectory::cancel`] releases the reservation when
///    the engine refused the subscription.
///
/// The caller then records the issued id in the owning shard's
/// [`ShardTranslation`] (under that shard's lock, when there is one).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use boolmatch_core::{ShardTranslation, SubscriptionDirectory, SubscriptionId};
/// use boolmatch_expr::Expr;
///
/// let mut dir = SubscriptionDirectory::new(2);
/// let mut translation = ShardTranslation::new(); // shard 0's map
/// let expr = Arc::new(Expr::parse("a = 1")?);
/// let shard = dir.place(); // least-loaded; empty directory → shard 0
/// let local = SubscriptionId::from_index(0);
/// let global = dir.commit(shard, local, expr);
/// translation.set(local, global);
/// assert_eq!(global.index(), 0); // arrival-order global id
/// assert_eq!(dir.placement_of(global), Some((0, local)));
/// assert_eq!(translation.global_of(local), Some(global));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionDirectory {
    /// Global id slot → generation + placement; a `None` placement
    /// marks a retired (free-listed) slot.
    slots: Vec<Slot>,
    /// Retired slot indexes, most recently retired last.
    free: Vec<u32>,
    /// Whether commit reissues retired slots (LIFO, generation-tagged)
    /// instead of appending arrival-order ids.
    recycle_ids: bool,
    /// Per-shard live subscription count, **including** placements
    /// reserved by [`SubscriptionDirectory::place`] but not yet
    /// committed.
    loads: Vec<usize>,
    /// Placement limit: [`SubscriptionDirectory::place`] only chooses
    /// shards `0..active`. Equal to the shard count except while a
    /// shrink is draining dying shards
    /// ([`SubscriptionDirectory::restrict_placement`]).
    active: usize,
    /// Round-robin tie-break cursor for [`SubscriptionDirectory::place`].
    cursor: usize,
    /// Committed live subscriptions (excludes reservations).
    live: usize,
    /// Running estimate of the heap held by the stored expressions
    /// (node-count based; maintained on commit/retire so
    /// [`SubscriptionDirectory::heap_bytes`] stays O(shards)).
    expr_bytes: usize,
}

/// Approximate heap bytes one stored expression adds to the directory:
/// its node count times the node size. String payloads inside
/// predicates are not walked, so this is a lower bound.
fn expr_estimate(expr: &Expr) -> usize {
    expr.node_count() * std::mem::size_of::<Expr>()
}

impl SubscriptionDirectory {
    /// An empty directory over `shards` shards, issuing arrival-order
    /// global ids (never reused — flat-engine aligned).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        SubscriptionDirectory {
            slots: Vec::new(),
            free: Vec::new(),
            recycle_ids: false,
            loads: vec![0; shards],
            active: shards,
            cursor: 0,
            live: 0,
            expr_bytes: 0,
        }
    }

    /// Like [`SubscriptionDirectory::new`], but retired slots are
    /// reissued (LIFO) from the free list, bounding the table to the
    /// high-water live count under unbounded churn. Every reissue is
    /// generation-tagged, so ids from earlier occupancies of a slot are
    /// rejected instead of aliased — recycling is ABA-safe and usable
    /// behind drop-unsubscribing handles. Ids then no longer align with
    /// an unsharded engine's arrival-order ids.
    pub fn with_recycled_ids(shards: usize) -> Self {
        SubscriptionDirectory {
            recycle_ids: true,
            ..Self::new(shards)
        }
    }

    /// Whether retired slots are reissued (generation-tagged) instead
    /// of the table growing forever.
    pub fn recycles_ids(&self) -> bool {
        self.recycle_ids
    }

    /// Number of shards placements route over.
    pub fn shard_count(&self) -> usize {
        self.loads.len()
    }

    /// Committed live subscriptions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Per-shard load (live subscriptions plus uncommitted
    /// reservations), indexed by shard.
    pub fn loads(&self) -> &[usize] {
        &self.loads
    }

    /// One shard's load; see [`SubscriptionDirectory::loads`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn load(&self, shard: usize) -> usize {
        self.loads[shard]
    }

    /// Retired slots in the global id table (issued ids whose
    /// subscription is gone; reissued only in
    /// [recycled-ids](SubscriptionDirectory::with_recycled_ids) mode).
    pub fn vacant(&self) -> usize {
        self.slots.len() - self.live
    }

    /// Exclusive upper bound of the issued global **slot** space
    /// (including retired slots). Scratch stamp arrays can be sized
    /// against this; note a recycled id's full
    /// [`SubscriptionId::index`] also carries the generation in its
    /// high bits and must not be used as an array index.
    pub fn id_bound(&self) -> usize {
        self.slots.len()
    }

    /// Spread between the most- and least-loaded shard.
    pub fn imbalance(&self) -> usize {
        let max = self.loads.iter().copied().max().unwrap_or(0);
        let min = self.loads.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// Whether the shard loads are as even as they can be (spread ≤ 1)
    /// — the invariant `rebalance()` restores.
    pub fn is_balanced(&self) -> bool {
        self.imbalance() <= 1
    }

    /// The `(most loaded, least loaded)` shard pair a count-balancing
    /// rebalancer should move a subscription between, or `None` when
    /// already balanced. Ties break to the lowest shard index, so
    /// planning is deterministic.
    pub fn skew_pair(&self) -> Option<(usize, usize)> {
        let mut max_i = 0;
        let mut min_i = 0;
        for (i, &load) in self.loads.iter().enumerate() {
            if load > self.loads[max_i] {
                max_i = i;
            }
            if load < self.loads[min_i] {
                min_i = i;
            }
        }
        (self.loads[max_i] - self.loads[min_i] > 1).then_some((max_i, min_i))
    }

    /// Picks the shard a new subscription should land on — the
    /// least-loaded shard among the currently
    /// [placeable](SubscriptionDirectory::restrict_placement) ones,
    /// ties broken round-robin from an internal cursor — and reserves
    /// one unit of load on it. Follow with
    /// [`SubscriptionDirectory::commit`] or
    /// [`SubscriptionDirectory::cancel`].
    ///
    /// On a directory that has only ever seen subscribes, this places
    /// exactly like classic round-robin (shard `n % S` for the *n*-th
    /// call); once unsubscribes have skewed the loads, drained shards
    /// are refilled first.
    pub fn place(&mut self) -> usize {
        self.place_among(self.active)
    }

    /// [`SubscriptionDirectory::place`] restricted to shards
    /// `0..limit` — the form shard draining uses, so a dying shard
    /// (index ≥ `limit`) is never chosen as a migration target.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero or exceeds the shard count.
    pub fn place_among(&mut self, limit: usize) -> usize {
        assert!(
            limit > 0 && limit <= self.shard_count(),
            "placement limit {limit} outside 1..={}",
            self.shard_count()
        );
        // lint: allow(panic-policy, reason = "unreachable: the assert above pins limit > 0, so the slice has a minimum")
        let min = self.loads[..limit]
            .iter()
            .copied()
            .min()
            .expect("limit > 0");
        let mut chosen = self.cursor % limit;
        for step in 0..limit {
            let shard = (self.cursor + step) % limit;
            if self.loads[shard] == min {
                chosen = shard;
                break;
            }
        }
        self.cursor = (chosen + 1) % limit;
        self.loads[chosen] += 1;
        chosen
    }

    /// Content-aware variant of [`SubscriptionDirectory::place`] for
    /// [`PlacementPolicy::ClusterByAttribute`]: reserves the *preferred*
    /// shard — `attr_hash` (the subscription's dominant equality
    /// attribute, hashed) mapped onto the placeable shards — so
    /// subscriptions sharing an attribute co-reside and synopsis pruning
    /// can skip every other shard.
    ///
    /// Clustering is **load-capped**: when the preferred shard already
    /// carries more than twice the other shards' average load (plus a
    /// small bootstrap slack), placement falls back to the least-loaded
    /// choice, so a degenerate workload clustering onto one attribute
    /// cannot recreate the churn-skew pathology least-loaded placement
    /// exists to prevent.
    pub fn place_clustered(&mut self, attr_hash: u64) -> usize {
        let limit = self.active;
        let preferred = usize::try_from(attr_hash % limit as u64).expect("shard index fits usize");
        if limit == 1 {
            self.loads[0] += 1;
            return 0;
        }
        // The cap compares against the *other* shards' average load, so
        // a lone runaway cluster cannot raise its own ceiling: a
        // clustered shard never exceeds twice the rest's fair share
        // (plus the bootstrap slack).
        let others: usize = self.loads[..limit].iter().sum::<usize>() - self.loads[preferred];
        let cap = 2 * (others / (limit - 1)) + CLUSTER_LOAD_SLACK;
        if self.loads[preferred] < cap {
            self.loads[preferred] += 1;
            preferred
        } else {
            self.place_among(limit)
        }
    }

    /// Restricts every subsequent [`SubscriptionDirectory::place`] to
    /// shards `0..survivors` — the first step of a shrink: once set, no
    /// new subscription can land on a dying shard while its residents
    /// drain. [`SubscriptionDirectory::remove_last_shard`] completes
    /// the shrink; [`SubscriptionDirectory::add_shard`] lifts the
    /// restriction when growing again.
    ///
    /// # Panics
    ///
    /// Panics if `survivors` is zero or exceeds the shard count.
    pub fn restrict_placement(&mut self, survivors: usize) {
        assert!(
            survivors > 0 && survivors <= self.shard_count(),
            "placement restriction {survivors} outside 1..={}",
            self.shard_count()
        );
        self.active = survivors;
    }

    /// The exclusive upper bound of shards
    /// [`SubscriptionDirectory::place`] currently chooses from; equal
    /// to the shard count except mid-shrink.
    pub fn active_shards(&self) -> usize {
        self.active
    }

    /// Releases a reservation made by [`SubscriptionDirectory::place`]
    /// whose engine `subscribe` failed.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or has no load to release.
    pub fn cancel(&mut self, shard: usize) {
        assert!(self.loads[shard] > 0, "cancel without a reservation");
        self.loads[shard] -= 1;
    }

    /// Completes a placement reserved by
    /// [`SubscriptionDirectory::place`]: records that `shard` assigned
    /// `local` to the subscription holding `expr`, and issues its
    /// global id (arrival-order, or generation-tagged recycled — see
    /// the type docs). The caller is responsible for mirroring the
    /// `local → global` mapping into the shard's
    /// [`ShardTranslation`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn commit(
        &mut self,
        shard: usize,
        local: SubscriptionId,
        expr: Arc<Expr>,
    ) -> SubscriptionId {
        // Clamped to the field width so add and release stay symmetric
        // even for absurdly large expressions.
        let charged = expr_estimate(&expr).min(u32::MAX as usize);
        self.expr_bytes += charged;
        let placement = Placement {
            shard: u32::try_from(shard).expect("shard count fits u32"),
            local: u32::try_from(local.index()).expect("local ids fit u32"),
            charged_bytes: charged as u32,
            expr,
        };
        let recycled = if self.recycle_ids {
            self.free.pop()
        } else {
            None
        };
        let slot_index = match recycled {
            Some(free) => {
                debug_assert!(self.slots[free as usize].placement.is_none());
                self.slots[free as usize].placement = Some(placement);
                free
            }
            None => {
                let next = u32::try_from(self.slots.len()).expect("more than u32::MAX - 1 ids");
                // Slot `u32::MAX` is never issued: `u64::MAX` is the
                // translation maps' sentinel, and a packed id with slot
                // and generation both `u32::MAX` would collide with it.
                assert_ne!(next, u32::MAX, "global subscription slot space exhausted");
                self.slots.push(Slot {
                    generation: 0,
                    placement: Some(placement),
                });
                next
            }
        };
        self.live += 1;
        SubscriptionId::from_parts(
            self.slots[slot_index as usize].generation,
            slot_index as usize,
        )
    }

    /// The slot behind `global`, provided the id's generation matches
    /// the slot's current occupancy — a stale id (earlier generation of
    /// a recycled slot) resolves to `None` exactly like a never-issued
    /// one.
    fn live_slot(&self, global: SubscriptionId) -> Option<&Placement> {
        let slot = self.slots.get(global.slot())?;
        if slot.generation != global.generation() {
            return None;
        }
        slot.placement.as_ref()
    }

    /// The `(shard, local id)` placement behind a global id, or `None`
    /// for ids never issued, already retired, or from an earlier
    /// generation of a recycled slot.
    pub fn placement_of(&self, global: SubscriptionId) -> Option<(usize, SubscriptionId)> {
        let p = self.live_slot(global)?;
        Some((
            p.shard as usize,
            SubscriptionId::from_index(p.local as usize),
        ))
    }

    /// The stored expression of a live subscription (shared, cheap to
    /// clone), or `None` for retired/unknown/stale ids.
    pub fn expr_of(&self, global: SubscriptionId) -> Option<&Arc<Expr>> {
        Some(&self.live_slot(global)?.expr)
    }

    /// Removes a subscription: frees its slot (onto the free list, in
    /// recycled-ids mode), bumps the slot's generation and releases its
    /// load unit. Returns the placement it had plus the stored
    /// expression — the caller clears the owning shard's
    /// [`ShardTranslation`] entry — or `None` for unknown, stale or
    /// already-retired ids.
    pub fn retire(&mut self, global: SubscriptionId) -> Option<(usize, SubscriptionId, Arc<Expr>)> {
        let slot = self.slots.get_mut(global.slot())?;
        if slot.generation != global.generation() {
            return None;
        }
        let p = slot.placement.take()?;
        // The ABA guard: whatever this slot is reissued as next carries
        // a generation no retired holder ever saw. (Wrapping after 2^32
        // retires of one slot is accepted: an id that stale has crossed
        // four billion reuses.)
        slot.generation = slot.generation.wrapping_add(1);
        // Release exactly what commit charged — re-estimating here
        // would drift whenever the Arc's count changed in between.
        self.expr_bytes -= p.charged_bytes as usize;
        self.loads[p.shard as usize] -= 1;
        self.live -= 1;
        if self.recycle_ids {
            // Arrival-order mode never pops the free list, so pushing
            // there would only leak; `vacant()` counts table holes
            // directly instead.
            self.free
                .push(u32::try_from(global.slot()).expect("issued slots fit u32"));
        }
        Some((
            p.shard as usize,
            SubscriptionId::from_index(p.local as usize),
            p.expr,
        ))
    }

    /// Commits a live migration: moves `global` from `(from,
    /// old_local)` to `(to, new_local)`, keeping its global id and
    /// stored expression. Returns `false` — changing nothing — unless
    /// the subscription's current placement is exactly `(from,
    /// old_local)`, so a migrator that raced a concurrent unsubscribe
    /// can detect the loss and undo its target-side subscribe. The
    /// caller moves the [`ShardTranslation`] entries of the two
    /// involved shards (under their locks, when there are locks).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn relocate(
        &mut self,
        global: SubscriptionId,
        from: usize,
        old_local: SubscriptionId,
        to: usize,
        new_local: SubscriptionId,
    ) -> bool {
        assert!(to < self.shard_count(), "target shard out of range");
        let Some(slot) = self.slots.get_mut(global.slot()) else {
            return false;
        };
        if slot.generation != global.generation() {
            return false;
        }
        let Some(p) = slot.placement.as_mut() else {
            return false;
        };
        if p.shard as usize != from || p.local as usize != old_local.index() {
            return false;
        }
        p.shard = u32::try_from(to).expect("shard count fits u32");
        p.local = u32::try_from(new_local.index()).expect("local ids fit u32");
        self.loads[from] -= 1;
        self.loads[to] += 1;
        true
    }

    /// Adds one (empty) shard at the next index and returns that index.
    /// Any placement restriction from an earlier shrink is lifted.
    pub fn add_shard(&mut self) -> usize {
        self.loads.push(0);
        self.active = self.loads.len();
        self.loads.len() - 1
    }

    /// Removes the highest-indexed shard.
    ///
    /// # Panics
    ///
    /// Panics if it still carries load (drain it first) or if it is the
    /// only shard.
    pub fn remove_last_shard(&mut self) {
        assert!(self.shard_count() > 1, "cannot remove the only shard");
        assert_eq!(
            *self.loads.last().expect("at least one shard"),
            0,
            "removing a shard that still carries subscriptions"
        );
        self.loads.pop();
        self.active = self.active.min(self.loads.len());
        self.cursor %= self.shard_count();
    }

    /// Approximate heap bytes held by the directory: the slot and load
    /// tables plus a node-count estimate of the stored expressions.
    /// The per-shard [`ShardTranslation`] maps are charged by their
    /// owners (they no longer live here). Folded into the sharded
    /// engine's and broker's `memory_usage` as
    /// unsubscription/rebalancing support.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.free.capacity() * 4
            + self.loads.capacity() * std::mem::size_of::<usize>()
            + self.expr_bytes
    }
}

/// One shard's local → global id translation map — the read side of
/// the [`SubscriptionDirectory`] split, owned next to the shard's
/// engine and read under the shard's own lock.
///
/// Matching translates each matched local id through the shard it just
/// matched (`translation.global_of(local)`), so the per-event
/// translation cost involves **no shared broker state**: the shard
/// lock the matcher already holds covers the map, and a subscription /
/// unsubscription / migration updates only the maps of the shards it
/// write-locks anyway.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{ShardTranslation, SubscriptionId};
///
/// let mut map = ShardTranslation::new();
/// let local = SubscriptionId::from_index(0);
/// let global = SubscriptionId::from_index(17);
/// map.set(local, global);
/// assert_eq!(map.global_of(local), Some(global));
/// assert_eq!(map.last_resident(), Some((global, local)));
/// assert!(map.clear_if(local, global));
/// assert_eq!(map.global_of(local), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardTranslation {
    /// `map[local]` → packed global id raw value, `NO_GLOBAL` when the
    /// local slot holds no live subscription.
    map: Vec<u64>,
    /// Live entries (non-sentinel), kept so `len` is O(1).
    live: usize,
}

impl ShardTranslation {
    /// An empty map; grows lazily to the shard's local id space.
    pub fn new() -> Self {
        ShardTranslation::default()
    }

    /// Live subscriptions mapped on this shard.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the shard maps no live subscription.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Records that this shard's `local` id belongs to `global`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the local slot is already mapped.
    pub fn set(&mut self, local: SubscriptionId, global: SubscriptionId) {
        let raw = (global.generation() as u64) << 32 | global.slot() as u64;
        debug_assert_ne!(raw, NO_GLOBAL, "packed id collides with the sentinel");
        if self.map.len() <= local.index() {
            self.map.resize(local.index() + 1, NO_GLOBAL);
        }
        debug_assert_eq!(
            self.map[local.index()],
            NO_GLOBAL,
            "local slot already mapped"
        );
        self.map[local.index()] = raw;
        self.live += 1;
    }

    /// The global id currently mapped to `local` — the translation
    /// matching applies to each matched local id. `None` when the slot
    /// holds no live subscription (out of range, never issued, retired,
    /// or migrated away).
    pub fn global_of(&self, local: SubscriptionId) -> Option<SubscriptionId> {
        self.map
            .get(local.index())
            .copied()
            .filter(|&raw| raw != NO_GLOBAL)
            .map(|raw| {
                SubscriptionId::from_parts((raw >> 32) as u32, (raw & u64::from(u32::MAX)) as usize)
            })
    }

    /// Clears the `local` entry, returning the global id it mapped (or
    /// `None` if it was empty).
    pub fn clear(&mut self, local: SubscriptionId) -> Option<SubscriptionId> {
        let global = self.global_of(local)?;
        self.map[local.index()] = NO_GLOBAL;
        self.live -= 1;
        self.trim_tail();
        Some(global)
    }

    /// Clears the `local` entry only if it currently maps to `global`;
    /// returns whether it did. This is the guard concurrent brokers use
    /// when an unsubscribe may race a resize that rebuilt the shard at
    /// this index: a stale caller's `(local, global)` pair cannot match
    /// a fresh shard's map, so the fresh shard's subscriptions are
    /// safe from stale removals.
    pub fn clear_if(&mut self, local: SubscriptionId, global: SubscriptionId) -> bool {
        if self.global_of(local) != Some(global) {
            return false;
        }
        self.map[local.index()] = NO_GLOBAL;
        self.live -= 1;
        self.trim_tail();
        true
    }

    /// Truncates the dead sentinel tail a clear may leave. Engines hand
    /// out local ids monotonically and migration always retires the
    /// *highest* live local first, so without the truncation a shard
    /// drain would rescan an ever-growing sentinel suffix on every
    /// [`ShardTranslation::last_resident`] call — O(n²) over the
    /// drain. Trimming keeps the tail live and the drain linear.
    fn trim_tail(&mut self) {
        while self.map.last() == Some(&NO_GLOBAL) {
            self.map.pop();
        }
    }

    /// The live `(global, local)` pairs resident on this shard,
    /// ascending by local id — an inspection/debug helper (allocates a
    /// fresh `Vec`). Migration planning itself walks victims through
    /// [`ShardTranslation::last_resident`], not through this.
    pub fn residents(&self) -> Vec<(SubscriptionId, SubscriptionId)> {
        (0..self.map.len())
            .filter_map(|local| {
                let local = SubscriptionId::from_index(local);
                self.global_of(local).map(|global| (global, local))
            })
            .collect()
    }

    /// The resident with the highest local id — the cheapest
    /// deterministic migration victim (the map's tail entry).
    pub fn last_resident(&self) -> Option<(SubscriptionId, SubscriptionId)> {
        (0..self.map.len()).rev().find_map(|local| {
            let local = SubscriptionId::from_index(local);
            self.global_of(local).map(|global| (global, local))
        })
    }

    /// Approximate heap bytes held by the map — charged into its
    /// owner's `memory_usage` (each shard's translation map is that
    /// shard's overhead, not the directory's).
    pub fn heap_bytes(&self) -> usize {
        self.map.capacity() * std::mem::size_of::<u64>()
    }
}

/// Stateless stride mapping between the global predicate id space and
/// the per-shard predicate spaces of an `S`-way sharded engine:
/// `global = local·S + shard`.
///
/// Predicates are interned independently per shard and never migrate,
/// so — unlike subscription ids, which live in the
/// [`SubscriptionDirectory`] — their global ids can stay arithmetic.
/// The mapping is only meaningful for a fixed shard count: a sharded
/// engine rebuilds its router when it is resized, and a `phase1` output
/// must not be fed to `phase2` across a resize.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{PredicateId, PredicateRouter};
///
/// let router = PredicateRouter::new(4);
/// let global = router.global_pred(3, PredicateId::from_index(10));
/// assert_eq!(router.split_pred(global), (3, PredicateId::from_index(10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateRouter {
    shards: usize,
}

impl PredicateRouter {
    /// Creates a router for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        PredicateRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The global predicate id of `local` on `shard` (predicate spaces
    /// of different shards are disjoint even when they intern the same
    /// predicate).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `shard` is out of range.
    pub fn global_pred(&self, shard: usize, local: PredicateId) -> PredicateId {
        debug_assert!(shard < self.shards);
        PredicateId::from_index(local.index() * self.shards + shard)
    }

    /// Both routing halves of a global predicate id.
    pub fn split_pred(&self, global: PredicateId) -> (usize, PredicateId) {
        (
            global.index() % self.shards,
            PredicateId::from_index(global.index() / self.shards),
        )
    }

    /// The exclusive upper bound of the global predicate id space,
    /// given each shard's exclusive local bound: the largest
    /// interleaved id any shard can have issued, plus one. Zero when
    /// every shard is empty.
    pub fn global_bound(&self, local_bounds: impl IntoIterator<Item = usize>) -> usize {
        local_bounds
            .into_iter()
            .enumerate()
            .filter(|&(_, bound)| bound > 0)
            .map(|(shard, bound)| (bound - 1) * self.shards + shard + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr() -> Arc<Expr> {
        Arc::new(Expr::parse("a = 1").unwrap())
    }

    fn sid(i: usize) -> SubscriptionId {
        SubscriptionId::from_index(i)
    }

    /// Registers one subscription the way engines do: place, then
    /// commit with the next local id of the chosen shard, then mirror
    /// the mapping into the shard's translation map.
    fn register(
        dir: &mut SubscriptionDirectory,
        maps: &mut [ShardTranslation],
        next_local: &mut [usize],
    ) -> SubscriptionId {
        let shard = dir.place();
        let local = sid(next_local[shard]);
        next_local[shard] += 1;
        let global = dir.commit(shard, local, expr());
        maps[shard].set(local, global);
        global
    }

    /// Retires `global` from the directory and its shard's map, the way
    /// engine/broker unsubscribe does.
    fn retire(
        dir: &mut SubscriptionDirectory,
        maps: &mut [ShardTranslation],
        global: SubscriptionId,
    ) -> usize {
        let (shard, local, _) = dir.retire(global).unwrap();
        assert!(maps[shard].clear_if(local, global));
        shard
    }

    #[test]
    fn churn_free_placement_is_round_robin_with_arrival_order_ids() {
        let mut dir = SubscriptionDirectory::new(3);
        let mut maps = vec![ShardTranslation::new(); 3];
        let mut locals = [0usize; 3];
        for n in 0..9 {
            let before = dir.loads().to_vec();
            let global = register(&mut dir, &mut maps, &mut locals);
            assert_eq!(global.index(), n, "arrival-order ids");
            assert_eq!(global.generation(), 0, "arrival mode never tags");
            // The n-th subscription lands on shard n % 3, like the old
            // round-robin cursor.
            let (shard, _) = dir.placement_of(global).unwrap();
            assert_eq!(shard, n % 3);
            assert_eq!(dir.load(shard), before[shard] + 1);
        }
        assert_eq!(dir.loads(), &[3, 3, 3]);
        assert_eq!(dir.live(), 9);
        assert!(dir.is_balanced());
        assert_eq!(maps.iter().map(ShardTranslation::len).sum::<usize>(), 9);
    }

    #[test]
    fn drained_shard_is_refilled_first() {
        let mut dir = SubscriptionDirectory::new(4);
        let mut maps = vec![ShardTranslation::new(); 4];
        let mut locals = [0usize; 4];
        let globals: Vec<_> = (0..12)
            .map(|_| register(&mut dir, &mut maps, &mut locals))
            .collect();
        // Drain shard 2 (subscriptions 2, 6, 10).
        for &g in &[globals[2], globals[6], globals[10]] {
            assert_eq!(retire(&mut dir, &mut maps, g), 2);
        }
        assert_eq!(dir.loads(), &[3, 3, 0, 3]);
        assert_eq!(dir.skew_pair(), Some((0, 2)));
        assert!(maps[2].is_empty());
        // The next three placements must refill shard 2 — the old blind
        // round-robin cursor would have spread them over all shards.
        for _ in 0..3 {
            let g = register(&mut dir, &mut maps, &mut locals);
            assert_eq!(dir.placement_of(g).unwrap().0, 2);
        }
        assert_eq!(dir.loads(), &[3, 3, 3, 3]);
        assert!(dir.skew_pair().is_none());
    }

    #[test]
    fn retire_frees_and_arrival_mode_never_reuses() {
        let mut dir = SubscriptionDirectory::new(2);
        let mut maps = vec![ShardTranslation::new(); 2];
        let mut locals = [0usize; 2];
        let a = register(&mut dir, &mut maps, &mut locals);
        let b = register(&mut dir, &mut maps, &mut locals);
        assert_eq!(dir.retire(a).map(|(s, l, _)| (s, l)), Some((0, sid(0))));
        assert_eq!(dir.retire(a), None, "double retire");
        assert_eq!(dir.vacant(), 1);
        let c = register(&mut dir, &mut maps, &mut locals);
        assert_eq!(c.index(), 2, "arrival-order mode appends");
        assert_eq!(dir.id_bound(), 3);
        assert_eq!(dir.live(), 2);
        assert!(dir.expr_of(b).is_some());
        assert!(dir.expr_of(a).is_none());
    }

    #[test]
    fn recycled_ids_pop_the_free_list_with_a_fresh_generation() {
        let mut dir = SubscriptionDirectory::with_recycled_ids(2);
        assert!(dir.recycles_ids());
        let mut maps = vec![ShardTranslation::new(); 2];
        let mut locals = [0usize; 2];
        let a = register(&mut dir, &mut maps, &mut locals);
        let _b = register(&mut dir, &mut maps, &mut locals);
        retire(&mut dir, &mut maps, a);
        let c = register(&mut dir, &mut maps, &mut locals);
        assert_eq!(c.slot(), a.slot(), "retired slot reissued LIFO");
        assert_eq!(c.generation(), a.generation() + 1, "tagged reissue");
        assert_ne!(c, a, "the ABA guard: same slot, distinguishable ids");
        assert_eq!(dir.id_bound(), 2, "table stays bounded");
        assert_eq!(dir.vacant(), 0);
        // The stale id is dead everywhere: lookups, retire, relocate.
        assert_eq!(dir.placement_of(a), None);
        assert_eq!(dir.expr_of(a), None);
        assert_eq!(dir.retire(a), None);
        assert!(!dir.relocate(a, 0, sid(1), 1, sid(0)));
        // While the reissued id is fully live.
        assert!(dir.placement_of(c).is_some());
    }

    #[test]
    fn cancel_releases_the_reservation() {
        let mut dir = SubscriptionDirectory::new(2);
        let shard = dir.place();
        assert_eq!(dir.load(shard), 1);
        dir.cancel(shard);
        assert_eq!(dir.loads(), &[0, 0]);
        // The tie-break cursor advanced, so — like the old round-robin
        // cursor *not* advancing on rejection — the next placement still
        // refills the least-loaded shard first (all tied: cursor order).
        let next = dir.place();
        assert_eq!(next, 1);
    }

    #[test]
    fn clustered_placement_prefers_the_hashed_shard_until_the_cap() {
        let mut dir = SubscriptionDirectory::new(4);
        // hash 6 → shard 2, regardless of loads (under the cap).
        for _ in 0..3 {
            assert_eq!(dir.place_clustered(6), 2);
        }
        assert_eq!(dir.loads(), &[0, 0, 3, 0]);
        // With the other shards empty the cap is pure bootstrap slack:
        // pile on until the preferred shard hits it, then fall back to
        // least-loaded.
        for _ in 0..CLUSTER_LOAD_SLACK - 3 {
            assert_eq!(dir.place_clustered(6), 2);
        }
        let overflow = dir.place_clustered(6);
        assert_ne!(overflow, 2, "over the cap: least-loaded fallback");
        assert_eq!(dir.load(2), CLUSTER_LOAD_SLACK);
        // The cap scales with the fair share, so a busy directory lets
        // clusters keep growing past the bootstrap slack.
        for _ in 0..40 {
            dir.place();
        }
        assert_eq!(dir.place_clustered(6), 2, "2 × fair share not reached");
    }

    #[test]
    fn clustered_placement_respects_shrink_restriction() {
        let mut dir = SubscriptionDirectory::new(4);
        dir.restrict_placement(2);
        // hash 3 → shard 3 of 4, but only shards 0..2 are placeable:
        // the preference folds onto the survivors (3 % 2 = 1).
        assert_eq!(dir.place_clustered(3), 1);
        assert_eq!(dir.loads(), &[0, 1, 0, 0]);
    }

    #[test]
    fn relocate_keeps_the_global_id_and_moves_the_load() {
        let mut dir = SubscriptionDirectory::new(2);
        let mut maps = vec![ShardTranslation::new(); 2];
        let mut locals = [0usize; 2];
        let g = register(&mut dir, &mut maps, &mut locals); // shard 0, local 0
        assert!(dir.relocate(g, 0, sid(0), 1, sid(7)));
        // The caller mirrors the move into the two shard maps.
        assert!(maps[0].clear_if(sid(0), g));
        maps[1].set(sid(7), g);
        assert_eq!(dir.placement_of(g), Some((1, sid(7))));
        assert_eq!(maps[0].global_of(sid(0)), None);
        assert_eq!(maps[1].global_of(sid(7)), Some(g));
        assert_eq!(dir.loads(), &[0, 1]);
        // Stale placements (wrong shard or local) are refused.
        assert!(!dir.relocate(g, 0, sid(0), 0, sid(1)));
        assert!(!dir.relocate(sid(99), 0, sid(0), 1, sid(1)));
        // Retired ids are refused too.
        dir.retire(g).unwrap();
        assert!(!dir.relocate(g, 1, sid(7), 0, sid(1)));
    }

    #[test]
    fn placement_restriction_bounds_place() {
        let mut dir = SubscriptionDirectory::new(4);
        assert_eq!(dir.active_shards(), 4);
        dir.restrict_placement(2);
        assert_eq!(dir.active_shards(), 2);
        for _ in 0..8 {
            let shard = dir.place();
            assert!(shard < 2, "restricted placement chose shard {shard}");
        }
        // Growing lifts the restriction.
        dir.add_shard();
        assert_eq!(dir.active_shards(), 5);
    }

    #[test]
    fn shard_count_grows_and_shrinks() {
        let mut dir = SubscriptionDirectory::new(2);
        let mut maps = vec![ShardTranslation::new(); 3];
        let mut locals = [0usize; 3];
        let _ = register(&mut dir, &mut maps, &mut locals);
        assert_eq!(dir.add_shard(), 2);
        assert_eq!(dir.shard_count(), 3);
        // Shards 1 and 2 tie at zero load; the cursor (at 1) breaks the
        // tie, then the new shard fills.
        let g1 = register(&mut dir, &mut maps, &mut locals);
        assert_eq!(dir.placement_of(g1).unwrap().0, 1);
        let g = register(&mut dir, &mut maps, &mut locals);
        assert_eq!(dir.placement_of(g).unwrap().0, 2);
        // place_among excludes dying shards.
        let target = dir.place_among(2);
        assert!(target < 2);
        dir.cancel(target);
        // Draining then removing the last shard.
        let (_, local) = maps[2].last_resident().unwrap();
        let to = dir.place_among(2);
        dir.cancel(to); // relocate moves the load itself
        assert!(dir.relocate(g, 2, local, to, sid(locals[to])));
        assert!(maps[2].clear_if(local, g));
        maps[to].set(sid(locals[to]), g);
        dir.remove_last_shard();
        assert_eq!(dir.shard_count(), 2);
        assert_eq!(dir.placement_of(g).unwrap().0, to);
    }

    #[test]
    #[should_panic(expected = "still carries subscriptions")]
    fn removing_a_loaded_shard_panics() {
        let mut dir = SubscriptionDirectory::new(2);
        let shard = dir.place();
        dir.commit(shard, sid(0), expr());
        // Shard 0 got the subscription; make shard 1 the loaded one.
        let shard = dir.place();
        dir.commit(shard, sid(0), expr());
        dir.remove_last_shard();
    }

    #[test]
    #[should_panic(expected = "cannot remove the only shard")]
    fn removing_the_only_shard_panics() {
        SubscriptionDirectory::new(1).remove_last_shard();
    }

    #[test]
    fn heap_bytes_track_the_tables_and_expressions() {
        let mut dir = SubscriptionDirectory::new(2);
        let empty = dir.heap_bytes();
        let mut maps = vec![ShardTranslation::new(); 2];
        let mut locals = [0usize; 2];
        for _ in 0..32 {
            register(&mut dir, &mut maps, &mut locals);
        }
        assert!(dir.heap_bytes() > empty);
        assert!(maps[0].heap_bytes() > 0, "translation charged by its owner");
        // Retiring everything releases exactly the expression charge
        // commit added (capacity stays, the charge does not).
        let full = dir.heap_bytes();
        for slot in 0..32 {
            dir.retire(sid(slot)).unwrap();
        }
        assert!(dir.heap_bytes() < full);
    }

    #[test]
    fn translation_map_tracks_residents() {
        let mut map = ShardTranslation::new();
        assert!(map.is_empty());
        assert_eq!(map.last_resident(), None);
        assert_eq!(map.global_of(sid(5)), None, "out of range is empty");
        map.set(sid(0), sid(10));
        map.set(sid(1), sid(11));
        map.set(sid(2), sid(12));
        assert_eq!(map.len(), 3);
        assert_eq!(
            map.residents(),
            vec![(sid(10), sid(0)), (sid(11), sid(1)), (sid(12), sid(2))]
        );
        assert_eq!(map.last_resident(), Some((sid(12), sid(2))));
        // Clearing the tail truncates it (the O(n²)-drain guard).
        assert_eq!(map.clear(sid(2)), Some(sid(12)));
        assert_eq!(map.last_resident(), Some((sid(11), sid(1))));
        assert_eq!(map.clear(sid(2)), None, "double clear");
        // Middle clears leave the tail live.
        assert_eq!(map.clear(sid(0)), Some(sid(10)));
        assert_eq!(map.residents(), vec![(sid(11), sid(1))]);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn translation_clear_if_guards_against_stale_pairs() {
        let mut map = ShardTranslation::new();
        map.set(sid(0), sid(10));
        // A stale caller with the wrong global id cannot clear the
        // slot's current owner.
        assert!(!map.clear_if(sid(0), sid(99)));
        assert_eq!(map.global_of(sid(0)), Some(sid(10)));
        assert!(map.clear_if(sid(0), sid(10)));
        assert!(!map.clear_if(sid(0), sid(10)), "already cleared");
    }

    #[test]
    fn translation_round_trips_generation_tagged_ids() {
        let mut map = ShardTranslation::new();
        let tagged = SubscriptionId::from_parts(7, 3);
        map.set(sid(0), tagged);
        assert_eq!(map.global_of(sid(0)), Some(tagged));
        assert_eq!(map.last_resident(), Some((tagged, sid(0))));
        assert!(map.clear_if(sid(0), tagged));
    }

    #[test]
    fn predicate_round_trip() {
        let router = PredicateRouter::new(5);
        for shard in 0..5 {
            for local in [0usize, 1, 7, 100] {
                let g = router.global_pred(shard, PredicateId::from_index(local));
                assert_eq!(
                    router.split_pred(g),
                    (shard, PredicateId::from_index(local))
                );
            }
        }
        assert_eq!(router.shards(), 5);
    }

    #[test]
    fn predicate_global_bound_covers_issued_ids() {
        let router = PredicateRouter::new(3);
        assert_eq!(router.global_bound([4, 0, 2]), (4 - 1) * 3 + 1);
        assert_eq!(router.global_bound([0, 0, 0]), 0);
        let bound = router.global_bound([4, 0, 2]);
        for (shard, locals) in [(0usize, 4usize), (2, 2)] {
            for l in 0..locals {
                assert!(
                    router
                        .global_pred(shard, PredicateId::from_index(l))
                        .index()
                        < bound
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = PredicateRouter::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_directory_panics() {
        let _ = SubscriptionDirectory::new(0);
    }
}
