//! Subscription routing for the sharded matching core: the
//! [`SubscriptionDirectory`] indirection table and the stride
//! [`PredicateRouter`] for per-shard predicate id spaces.
//!
//! Through PR 3 the global ↔ `(shard, local)` subscription mapping was
//! pure arithmetic — stride interleaving, `global = local·S + shard`.
//! That mapping costs nothing, but it welds a subscription's placement
//! into its identity: a subscription can never move to another shard,
//! and the shard count `S` can never change, without re-issuing every
//! id the outside world holds. Load-aware rebalancing needs the
//! opposite contract — **ids are stable, placement is not** — so the
//! arithmetic is replaced by one level of indirection:
//!
//! * [`SubscriptionDirectory`] is a slot map from global subscription
//!   id to a [`(shard, local)`] placement record (plus the stored
//!   subscription expression, which live migration re-subscribes on the
//!   target shard). Retired slots go on a **free list**; by default ids
//!   are still handed out in arrival order — the *n*-th accepted
//!   subscription gets global id *n*, exactly like an unsharded engine,
//!   which the sharded ≡ flat equivalence tests rely on — while
//!   [`SubscriptionDirectory::with_recycled_ids`] pops the free list
//!   instead to bound the table under unbounded churn.
//! * Placement is **load-aware**: [`SubscriptionDirectory::place`]
//!   picks the least-loaded shard (weight: live subscriptions,
//!   pluggable for match frequency later), breaking ties round-robin so
//!   a churn-free subscribe stream places exactly like the old
//!   round-robin cursor did — but a shard drained by unsubscribes is
//!   refilled first instead of being skipped past blindly.
//! * The directory also keeps the **reverse** maps (`shard, local` →
//!   global) that matching uses to translate matched local ids, and the
//!   per-shard load counts that rebalancing plans against.
//!
//! Predicate ids are *not* in the directory: predicates are interned
//! per shard, never migrate individually, and only surface through the
//! transient standalone `phase1`/`phase2` API. They keep the cheap
//! stride arithmetic in [`PredicateRouter`], rebuilt when the shard
//! count changes (a global predicate id is only meaningful between a
//! `phase1`/`phase2` pair with no intervening resize).

use std::sync::Arc;

use boolmatch_expr::Expr;

use crate::{PredicateId, SubscriptionId};

/// Reverse-map sentinel: this `(shard, local)` slot holds no live
/// subscription.
const NO_GLOBAL: u32 = u32::MAX;

/// Where one live subscription currently lives.
#[derive(Debug, Clone)]
struct Placement {
    shard: u32,
    local: u32,
    /// What [`SubscriptionDirectory::commit`] charged to the
    /// directory's expression-heap estimate for this entry — recorded
    /// so retire releases exactly that amount, regardless of how the
    /// `Arc`'s reference count has changed since (a migrator's
    /// transient clone must not skew the accounting).
    charged_bytes: u32,
    /// The registered expression, kept so live migration can
    /// re-subscribe it on a target shard.
    expr: Arc<Expr>,
}

/// The global-id indirection table of a sharded engine or broker:
/// global subscription id → `(shard, local id)` placement, with a free
/// list of retired slots, per-shard load counts, and the reverse maps
/// matching uses to translate shard-local matched ids back to global
/// ids.
///
/// # Id-stability contract
///
/// A subscription's **global id never changes** while it is registered:
/// [`SubscriptionDirectory::relocate`] (live migration) and shard-count
/// changes rewrite only the placement behind the id. By default ids are
/// issued in arrival order and never reused — the *n*-th committed
/// subscription gets global id *n*, the same id an unsharded engine
/// would assign — so sharded and flat matched-id sets stay directly
/// comparable even across migration and resizing.
/// [`SubscriptionDirectory::with_recycled_ids`] trades that alignment
/// for a bounded table: retired ids are then reissued LIFO from the
/// free list.
///
/// # Placement protocol
///
/// Registration is a two-step dance so callers can run the engine's own
/// `subscribe` (which may fail) between the steps without the
/// directory lock held:
///
/// 1. [`SubscriptionDirectory::place`] picks the least-loaded shard and
///    **reserves** a unit of load on it (so concurrent placers spread
///    out instead of dog-piling the same shard);
/// 2. [`SubscriptionDirectory::commit`] records the engine-assigned
///    local id and issues the global id — or
///    [`SubscriptionDirectory::cancel`] releases the reservation when
///    the engine refused the subscription.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use boolmatch_core::{SubscriptionDirectory, SubscriptionId};
/// use boolmatch_expr::Expr;
///
/// let mut dir = SubscriptionDirectory::new(2);
/// let expr = Arc::new(Expr::parse("a = 1")?);
/// let shard = dir.place(); // least-loaded; empty directory → shard 0
/// let global = dir.commit(shard, SubscriptionId::from_index(0), expr);
/// assert_eq!(global.index(), 0); // arrival-order global id
/// assert_eq!(dir.placement_of(global), Some((0, SubscriptionId::from_index(0))));
/// assert_eq!(dir.global_of(0, SubscriptionId::from_index(0)), Some(global));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubscriptionDirectory {
    /// Global id → placement; `None` marks a retired (free-listed) id.
    slots: Vec<Option<Placement>>,
    /// Retired global ids, most recently retired last.
    free: Vec<u32>,
    /// Whether [`SubscriptionDirectory::commit`] reissues retired ids
    /// (LIFO) instead of appending arrival-order ids.
    recycle_ids: bool,
    /// Per-shard live subscription count, **including** placements
    /// reserved by [`SubscriptionDirectory::place`] but not yet
    /// committed.
    loads: Vec<usize>,
    /// `reverse[shard][local]` → global id (`NO_GLOBAL` when empty).
    reverse: Vec<Vec<u32>>,
    /// Round-robin tie-break cursor for [`SubscriptionDirectory::place`].
    cursor: usize,
    /// Committed live subscriptions (excludes reservations).
    live: usize,
    /// Running estimate of the heap held by the stored expressions
    /// (node-count based; maintained on commit/retire so
    /// [`SubscriptionDirectory::heap_bytes`] stays O(shards)).
    expr_bytes: usize,
}

/// Approximate heap bytes one stored expression adds to the directory:
/// its node count times the node size. String payloads inside
/// predicates are not walked, so this is a lower bound.
fn expr_estimate(expr: &Expr) -> usize {
    expr.node_count() * std::mem::size_of::<Expr>()
}

impl SubscriptionDirectory {
    /// An empty directory over `shards` shards, issuing arrival-order
    /// global ids (never reused — flat-engine aligned).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        SubscriptionDirectory {
            slots: Vec::new(),
            free: Vec::new(),
            recycle_ids: false,
            loads: vec![0; shards],
            reverse: vec![Vec::new(); shards],
            cursor: 0,
            live: 0,
            expr_bytes: 0,
        }
    }

    /// Like [`SubscriptionDirectory::new`], but retired global ids are
    /// reissued (LIFO) from the free list, bounding the table to the
    /// high-water live count under unbounded churn. Ids then no longer
    /// align with an unsharded engine's arrival-order ids.
    pub fn with_recycled_ids(shards: usize) -> Self {
        SubscriptionDirectory {
            recycle_ids: true,
            ..Self::new(shards)
        }
    }

    /// Number of shards placements route over.
    pub fn shard_count(&self) -> usize {
        self.loads.len()
    }

    /// Committed live subscriptions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Per-shard load (live subscriptions plus uncommitted
    /// reservations), indexed by shard.
    pub fn loads(&self) -> &[usize] {
        &self.loads
    }

    /// One shard's load; see [`SubscriptionDirectory::loads`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn load(&self, shard: usize) -> usize {
        self.loads[shard]
    }

    /// Retired slots in the global id table (issued ids whose
    /// subscription is gone; reissued only in
    /// [recycled-ids](SubscriptionDirectory::with_recycled_ids) mode).
    pub fn vacant(&self) -> usize {
        self.slots.len() - self.live
    }

    /// Exclusive upper bound of the issued global id space (including
    /// retired ids). Scratch stamp arrays can be sized against this.
    pub fn id_bound(&self) -> usize {
        self.slots.len()
    }

    /// Spread between the most- and least-loaded shard.
    pub fn imbalance(&self) -> usize {
        let max = self.loads.iter().copied().max().unwrap_or(0);
        let min = self.loads.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// Whether the shard loads are as even as they can be (spread ≤ 1)
    /// — the invariant `rebalance()` restores.
    pub fn is_balanced(&self) -> bool {
        self.imbalance() <= 1
    }

    /// The `(most loaded, least loaded)` shard pair a rebalancer should
    /// move a subscription between, or `None` when already balanced.
    /// Ties break to the lowest shard index, so planning is
    /// deterministic.
    pub fn skew_pair(&self) -> Option<(usize, usize)> {
        let mut max_i = 0;
        let mut min_i = 0;
        for (i, &load) in self.loads.iter().enumerate() {
            if load > self.loads[max_i] {
                max_i = i;
            }
            if load < self.loads[min_i] {
                min_i = i;
            }
        }
        (self.loads[max_i] - self.loads[min_i] > 1).then_some((max_i, min_i))
    }

    /// Picks the shard a new subscription should land on — the
    /// least-loaded shard, ties broken round-robin from an internal
    /// cursor — and reserves one unit of load on it. Follow with
    /// [`SubscriptionDirectory::commit`] or
    /// [`SubscriptionDirectory::cancel`].
    ///
    /// On a directory that has only ever seen subscribes, this places
    /// exactly like classic round-robin (shard `n % S` for the *n*-th
    /// call); once unsubscribes have skewed the loads, drained shards
    /// are refilled first.
    pub fn place(&mut self) -> usize {
        self.place_among(self.shard_count())
    }

    /// [`SubscriptionDirectory::place`] restricted to shards
    /// `0..limit` — the form shard draining uses, so a dying shard
    /// (index ≥ `limit`) is never chosen as a migration target.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero or exceeds the shard count.
    pub fn place_among(&mut self, limit: usize) -> usize {
        assert!(
            limit > 0 && limit <= self.shard_count(),
            "placement limit {limit} outside 1..={}",
            self.shard_count()
        );
        let min = self.loads[..limit]
            .iter()
            .copied()
            .min()
            .expect("limit > 0");
        let mut chosen = self.cursor % limit;
        for step in 0..limit {
            let shard = (self.cursor + step) % limit;
            if self.loads[shard] == min {
                chosen = shard;
                break;
            }
        }
        self.cursor = (chosen + 1) % limit;
        self.loads[chosen] += 1;
        chosen
    }

    /// Releases a reservation made by [`SubscriptionDirectory::place`]
    /// whose engine `subscribe` failed.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or has no load to release.
    pub fn cancel(&mut self, shard: usize) {
        assert!(self.loads[shard] > 0, "cancel without a reservation");
        self.loads[shard] -= 1;
    }

    /// Completes a placement reserved by
    /// [`SubscriptionDirectory::place`]: records that `shard` assigned
    /// `local` to the subscription holding `expr`, and issues its
    /// global id (arrival-order, or recycled — see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, or (debug) if the `(shard,
    /// local)` slot is already mapped.
    pub fn commit(
        &mut self,
        shard: usize,
        local: SubscriptionId,
        expr: Arc<Expr>,
    ) -> SubscriptionId {
        self.commit_charging(shard, local, expr, true)
    }

    /// [`SubscriptionDirectory::commit`] for an expression the caller
    /// shares across many subscriptions (e.g. a single-shard broker's
    /// placeholder, where migration is unreachable and every entry
    /// clones one allocation): the entry is stored but contributes
    /// nothing to [`SubscriptionDirectory::heap_bytes`], since the
    /// allocation does not exist per subscription. Plain `commit`
    /// charges every entry.
    pub fn commit_shared(
        &mut self,
        shard: usize,
        local: SubscriptionId,
        expr: Arc<Expr>,
    ) -> SubscriptionId {
        self.commit_charging(shard, local, expr, false)
    }

    fn commit_charging(
        &mut self,
        shard: usize,
        local: SubscriptionId,
        expr: Arc<Expr>,
        charge: bool,
    ) -> SubscriptionId {
        // Clamped to the field width so add and release stay symmetric
        // even for absurdly large expressions.
        let charged = if charge {
            expr_estimate(&expr).min(u32::MAX as usize)
        } else {
            0
        };
        self.expr_bytes += charged;
        let placement = Placement {
            shard: u32::try_from(shard).expect("shard count fits u32"),
            local: u32::try_from(local.index()).expect("local ids fit u32"),
            charged_bytes: charged as u32,
            expr,
        };
        let recycled = if self.recycle_ids {
            self.free.pop()
        } else {
            None
        };
        let global = match recycled {
            Some(free) => {
                debug_assert!(self.slots[free as usize].is_none());
                self.slots[free as usize] = Some(placement);
                free
            }
            None => {
                let next = u32::try_from(self.slots.len()).expect("more than u32::MAX - 1 ids");
                // `NO_GLOBAL` (u32::MAX) is the reverse-map sentinel;
                // issuing it as an id would make that subscription
                // silently unmatchable.
                assert_ne!(next, NO_GLOBAL, "global subscription id space exhausted");
                self.slots.push(Some(placement));
                next
            }
        };
        let reverse = &mut self.reverse[shard];
        if reverse.len() <= local.index() {
            reverse.resize(local.index() + 1, NO_GLOBAL);
        }
        debug_assert_eq!(
            reverse[local.index()],
            NO_GLOBAL,
            "local slot already mapped"
        );
        reverse[local.index()] = global;
        self.live += 1;
        SubscriptionId::from_index(global as usize)
    }

    /// The `(shard, local id)` placement behind a global id, or `None`
    /// for ids never issued or already retired.
    pub fn placement_of(&self, global: SubscriptionId) -> Option<(usize, SubscriptionId)> {
        let p = self.slots.get(global.index())?.as_ref()?;
        Some((
            p.shard as usize,
            SubscriptionId::from_index(p.local as usize),
        ))
    }

    /// The stored expression of a live subscription (shared, cheap to
    /// clone), or `None` for retired/unknown ids.
    pub fn expr_of(&self, global: SubscriptionId) -> Option<&Arc<Expr>> {
        Some(&self.slots.get(global.index())?.as_ref()?.expr)
    }

    /// The global id currently mapped to `(shard, local)` — the
    /// translation matching applies to each matched local id. `None`
    /// when the slot holds no live subscription (out of range, never
    /// issued, retired, or migrated away).
    pub fn global_of(&self, shard: usize, local: SubscriptionId) -> Option<SubscriptionId> {
        self.reverse
            .get(shard)?
            .get(local.index())
            .copied()
            .filter(|&g| g != NO_GLOBAL)
            .map(|g| SubscriptionId::from_index(g as usize))
    }

    /// Removes a subscription: frees its global id slot (onto the free
    /// list, in recycled-ids mode), clears the reverse mapping and
    /// releases its load unit. Returns the placement it had plus the
    /// stored expression, or `None` for unknown/already-retired ids.
    pub fn retire(&mut self, global: SubscriptionId) -> Option<(usize, SubscriptionId, Arc<Expr>)> {
        let p = self.slots.get_mut(global.index())?.take()?;
        // Release exactly what commit charged — re-estimating here
        // would drift whenever the Arc's count changed in between.
        self.expr_bytes -= p.charged_bytes as usize;
        self.clear_reverse(p.shard as usize, p.local as usize);
        self.loads[p.shard as usize] -= 1;
        self.live -= 1;
        if self.recycle_ids {
            // Arrival-order mode never pops the free list, so pushing
            // there would only leak; `vacant()` counts table holes
            // directly instead.
            self.free
                .push(u32::try_from(global.index()).expect("issued ids fit u32"));
        }
        Some((
            p.shard as usize,
            SubscriptionId::from_index(p.local as usize),
            p.expr,
        ))
    }

    /// Clears one reverse-map entry and truncates the dead tail it may
    /// leave. Engines hand out local ids monotonically and migration
    /// always retires the *highest* live local first, so without the
    /// truncation a shard drain would rescan an ever-growing
    /// `NO_GLOBAL` suffix on every [`SubscriptionDirectory::last_resident`]
    /// call — O(n²) over the drain. Trimming keeps the tail live and the
    /// drain linear.
    fn clear_reverse(&mut self, shard: usize, local: usize) {
        let reverse = &mut self.reverse[shard];
        reverse[local] = NO_GLOBAL;
        while reverse.last() == Some(&NO_GLOBAL) {
            reverse.pop();
        }
    }

    /// Commits a live migration: moves `global` from `(from,
    /// old_local)` to `(to, new_local)`, keeping its global id and
    /// stored expression. Returns `false` — changing nothing — unless
    /// the subscription's current placement is exactly `(from,
    /// old_local)`, so a migrator that raced a concurrent unsubscribe
    /// can detect the loss and undo its target-side subscribe.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn relocate(
        &mut self,
        global: SubscriptionId,
        from: usize,
        old_local: SubscriptionId,
        to: usize,
        new_local: SubscriptionId,
    ) -> bool {
        assert!(to < self.shard_count(), "target shard out of range");
        let Some(p) = self.slots.get_mut(global.index()).and_then(Option::as_mut) else {
            return false;
        };
        if p.shard as usize != from || p.local as usize != old_local.index() {
            return false;
        }
        p.shard = u32::try_from(to).expect("shard count fits u32");
        p.local = u32::try_from(new_local.index()).expect("local ids fit u32");
        self.clear_reverse(from, old_local.index());
        let reverse = &mut self.reverse[to];
        if reverse.len() <= new_local.index() {
            reverse.resize(new_local.index() + 1, NO_GLOBAL);
        }
        debug_assert_eq!(reverse[new_local.index()], NO_GLOBAL);
        reverse[new_local.index()] = u32::try_from(global.index()).expect("issued ids fit u32");
        self.loads[from] -= 1;
        self.loads[to] += 1;
        true
    }

    /// The live `(global, local)` pairs resident on `shard`, ascending
    /// by local id — an inspection/debug helper (allocates a fresh
    /// `Vec`). Migration planning itself walks victims through
    /// [`SubscriptionDirectory::last_resident`], not through this.
    pub fn residents(&self, shard: usize) -> Vec<(SubscriptionId, SubscriptionId)> {
        self.reverse.get(shard).map_or_else(Vec::new, |reverse| {
            reverse
                .iter()
                .enumerate()
                .filter(|&(_, &g)| g != NO_GLOBAL)
                .map(|(local, &g)| {
                    (
                        SubscriptionId::from_index(g as usize),
                        SubscriptionId::from_index(local),
                    )
                })
                .collect()
        })
    }

    /// The resident of `shard` with the highest local id — the cheapest
    /// deterministic migration victim (its reverse-map tail entry).
    pub fn last_resident(&self, shard: usize) -> Option<(SubscriptionId, SubscriptionId)> {
        let reverse = self.reverse.get(shard)?;
        reverse
            .iter()
            .enumerate()
            .rev()
            .find(|&(_, &g)| g != NO_GLOBAL)
            .map(|(local, &g)| {
                (
                    SubscriptionId::from_index(g as usize),
                    SubscriptionId::from_index(local),
                )
            })
    }

    /// Adds one (empty) shard at the next index and returns that index.
    pub fn add_shard(&mut self) -> usize {
        self.loads.push(0);
        self.reverse.push(Vec::new());
        self.loads.len() - 1
    }

    /// Removes the highest-indexed shard.
    ///
    /// # Panics
    ///
    /// Panics if it still carries load (drain it first) or if it is the
    /// only shard.
    pub fn remove_last_shard(&mut self) {
        assert!(self.shard_count() > 1, "cannot remove the only shard");
        assert_eq!(
            *self.loads.last().expect("at least one shard"),
            0,
            "removing a shard that still carries subscriptions"
        );
        self.loads.pop();
        self.reverse.pop();
        self.cursor %= self.shard_count();
    }

    /// Approximate heap bytes held by the directory: the id/reverse/
    /// load tables plus a node-count estimate of the stored
    /// expressions. Folded into the sharded engine's and broker's
    /// `memory_usage` (as unsubscription/rebalancing support).
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<Placement>>()
            + self.free.capacity() * 4
            + self.loads.capacity() * std::mem::size_of::<usize>()
            + self.reverse.iter().map(|r| r.capacity() * 4).sum::<usize>()
            + self.expr_bytes
    }
}

/// Stateless stride mapping between the global predicate id space and
/// the per-shard predicate spaces of an `S`-way sharded engine:
/// `global = local·S + shard`.
///
/// Predicates are interned independently per shard and never migrate,
/// so — unlike subscription ids, which live in the
/// [`SubscriptionDirectory`] — their global ids can stay arithmetic.
/// The mapping is only meaningful for a fixed shard count: a sharded
/// engine rebuilds its router when it is resized, and a `phase1` output
/// must not be fed to `phase2` across a resize.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{PredicateId, PredicateRouter};
///
/// let router = PredicateRouter::new(4);
/// let global = router.global_pred(3, PredicateId::from_index(10));
/// assert_eq!(router.split_pred(global), (3, PredicateId::from_index(10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateRouter {
    shards: usize,
}

impl PredicateRouter {
    /// Creates a router for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        PredicateRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The global predicate id of `local` on `shard` (predicate spaces
    /// of different shards are disjoint even when they intern the same
    /// predicate).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `shard` is out of range.
    pub fn global_pred(&self, shard: usize, local: PredicateId) -> PredicateId {
        debug_assert!(shard < self.shards);
        PredicateId::from_index(local.index() * self.shards + shard)
    }

    /// Both routing halves of a global predicate id.
    pub fn split_pred(&self, global: PredicateId) -> (usize, PredicateId) {
        (
            global.index() % self.shards,
            PredicateId::from_index(global.index() / self.shards),
        )
    }

    /// The exclusive upper bound of the global predicate id space,
    /// given each shard's exclusive local bound: the largest
    /// interleaved id any shard can have issued, plus one. Zero when
    /// every shard is empty.
    pub fn global_bound(&self, local_bounds: impl IntoIterator<Item = usize>) -> usize {
        local_bounds
            .into_iter()
            .enumerate()
            .filter(|&(_, bound)| bound > 0)
            .map(|(shard, bound)| (bound - 1) * self.shards + shard + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr() -> Arc<Expr> {
        Arc::new(Expr::parse("a = 1").unwrap())
    }

    fn sid(i: usize) -> SubscriptionId {
        SubscriptionId::from_index(i)
    }

    /// Registers one subscription the way engines do: place, then
    /// commit with the next local id of the chosen shard.
    fn register(dir: &mut SubscriptionDirectory, next_local: &mut [usize]) -> SubscriptionId {
        let shard = dir.place();
        let local = sid(next_local[shard]);
        next_local[shard] += 1;
        dir.commit(shard, local, expr())
    }

    #[test]
    fn churn_free_placement_is_round_robin_with_arrival_order_ids() {
        let mut dir = SubscriptionDirectory::new(3);
        let mut locals = [0usize; 3];
        for n in 0..9 {
            let before = dir.loads().to_vec();
            let global = register(&mut dir, &mut locals);
            assert_eq!(global.index(), n, "arrival-order ids");
            // The n-th subscription lands on shard n % 3, like the old
            // round-robin cursor.
            let (shard, _) = dir.placement_of(global).unwrap();
            assert_eq!(shard, n % 3);
            assert_eq!(dir.load(shard), before[shard] + 1);
        }
        assert_eq!(dir.loads(), &[3, 3, 3]);
        assert_eq!(dir.live(), 9);
        assert!(dir.is_balanced());
    }

    #[test]
    fn drained_shard_is_refilled_first() {
        let mut dir = SubscriptionDirectory::new(4);
        let mut locals = [0usize; 4];
        let globals: Vec<_> = (0..12).map(|_| register(&mut dir, &mut locals)).collect();
        // Drain shard 2 (subscriptions 2, 6, 10).
        for &g in &[globals[2], globals[6], globals[10]] {
            let (shard, _, _) = dir.retire(g).unwrap();
            assert_eq!(shard, 2);
        }
        assert_eq!(dir.loads(), &[3, 3, 0, 3]);
        assert_eq!(dir.skew_pair(), Some((0, 2)));
        // The next three placements must refill shard 2 — the old blind
        // round-robin cursor would have spread them over all shards.
        for _ in 0..3 {
            let g = register(&mut dir, &mut locals);
            assert_eq!(dir.placement_of(g).unwrap().0, 2);
        }
        assert_eq!(dir.loads(), &[3, 3, 3, 3]);
        assert!(dir.skew_pair().is_none());
    }

    #[test]
    fn retire_frees_and_arrival_mode_never_reuses() {
        let mut dir = SubscriptionDirectory::new(2);
        let mut locals = [0usize; 2];
        let a = register(&mut dir, &mut locals);
        let b = register(&mut dir, &mut locals);
        assert_eq!(dir.retire(a).map(|(s, l, _)| (s, l)), Some((0, sid(0))));
        assert_eq!(dir.retire(a), None, "double retire");
        assert_eq!(dir.vacant(), 1);
        assert_eq!(dir.global_of(0, sid(0)), None);
        let c = register(&mut dir, &mut locals);
        assert_eq!(c.index(), 2, "arrival-order mode appends");
        assert_eq!(dir.id_bound(), 3);
        assert_eq!(dir.live(), 2);
        assert!(dir.expr_of(b).is_some());
        assert!(dir.expr_of(a).is_none());
    }

    #[test]
    fn recycled_ids_pop_the_free_list() {
        let mut dir = SubscriptionDirectory::with_recycled_ids(2);
        let mut locals = [0usize; 2];
        let a = register(&mut dir, &mut locals);
        let _b = register(&mut dir, &mut locals);
        dir.retire(a).unwrap();
        let c = register(&mut dir, &mut locals);
        assert_eq!(c, a, "retired id reissued LIFO");
        assert_eq!(dir.id_bound(), 2, "table stays bounded");
        assert_eq!(dir.vacant(), 0);
    }

    #[test]
    fn cancel_releases_the_reservation() {
        let mut dir = SubscriptionDirectory::new(2);
        let shard = dir.place();
        assert_eq!(dir.load(shard), 1);
        dir.cancel(shard);
        assert_eq!(dir.loads(), &[0, 0]);
        // The tie-break cursor advanced, so — like the old round-robin
        // cursor *not* advancing on rejection — the next placement still
        // refills the least-loaded shard first (all tied: cursor order).
        let next = dir.place();
        assert_eq!(next, 1);
    }

    #[test]
    fn relocate_keeps_the_global_id_and_moves_the_load() {
        let mut dir = SubscriptionDirectory::new(2);
        let mut locals = [0usize; 2];
        let g = register(&mut dir, &mut locals); // shard 0, local 0
        assert!(dir.relocate(g, 0, sid(0), 1, sid(7)));
        assert_eq!(dir.placement_of(g), Some((1, sid(7))));
        assert_eq!(dir.global_of(0, sid(0)), None);
        assert_eq!(dir.global_of(1, sid(7)), Some(g));
        assert_eq!(dir.loads(), &[0, 1]);
        // Stale placements (wrong shard or local) are refused.
        assert!(!dir.relocate(g, 0, sid(0), 0, sid(1)));
        assert!(!dir.relocate(sid(99), 0, sid(0), 1, sid(1)));
        // Retired ids are refused too.
        dir.retire(g).unwrap();
        assert!(!dir.relocate(g, 1, sid(7), 0, sid(1)));
    }

    #[test]
    fn residents_walk_in_local_order() {
        let mut dir = SubscriptionDirectory::new(2);
        let mut locals = [0usize; 2];
        let globals: Vec<_> = (0..6).map(|_| register(&mut dir, &mut locals)).collect();
        // Shard 0 holds globals 0, 2, 4 at locals 0, 1, 2.
        assert_eq!(
            dir.residents(0),
            vec![
                (globals[0], sid(0)),
                (globals[2], sid(1)),
                (globals[4], sid(2))
            ]
        );
        assert_eq!(dir.last_resident(0), Some((globals[4], sid(2))));
        dir.retire(globals[4]).unwrap();
        assert_eq!(dir.last_resident(0), Some((globals[2], sid(1))));
        assert!(dir.residents(9).is_empty(), "out-of-range shard is empty");
        assert_eq!(dir.last_resident(9), None);
    }

    #[test]
    fn shard_count_grows_and_shrinks() {
        let mut dir = SubscriptionDirectory::new(2);
        let mut locals = [0usize; 3];
        let _ = register(&mut dir, &mut locals);
        assert_eq!(dir.add_shard(), 2);
        assert_eq!(dir.shard_count(), 3);
        // Shards 1 and 2 tie at zero load; the cursor (at 1) breaks the
        // tie, then the new shard fills.
        let g1 = register(&mut dir, &mut locals);
        assert_eq!(dir.placement_of(g1).unwrap().0, 1);
        let g = register(&mut dir, &mut locals);
        assert_eq!(dir.placement_of(g).unwrap().0, 2);
        // place_among excludes dying shards.
        let target = dir.place_among(2);
        assert!(target < 2);
        dir.cancel(target);
        // Draining then removing the last shard.
        let (from, local) = (2usize, dir.last_resident(2).unwrap().1);
        let to = dir.place_among(2);
        dir.cancel(to); // relocate moves the load itself
        assert!(dir.relocate(g, from, local, to, sid(locals[to])));
        dir.remove_last_shard();
        assert_eq!(dir.shard_count(), 2);
        assert_eq!(dir.placement_of(g).unwrap().0, to);
    }

    #[test]
    #[should_panic(expected = "still carries subscriptions")]
    fn removing_a_loaded_shard_panics() {
        let mut dir = SubscriptionDirectory::new(2);
        let shard = dir.place();
        dir.commit(shard, sid(0), expr());
        // Shard 0 got the subscription; make shard 1 the loaded one.
        let shard = dir.place();
        dir.commit(shard, sid(0), expr());
        dir.remove_last_shard();
    }

    #[test]
    #[should_panic(expected = "cannot remove the only shard")]
    fn removing_the_only_shard_panics() {
        SubscriptionDirectory::new(1).remove_last_shard();
    }

    #[test]
    fn heap_bytes_track_the_tables() {
        let mut dir = SubscriptionDirectory::new(2);
        let empty = dir.heap_bytes();
        let mut locals = [0usize; 2];
        for _ in 0..32 {
            register(&mut dir, &mut locals);
        }
        assert!(dir.heap_bytes() > empty);
    }

    #[test]
    fn shared_commits_are_not_charged_and_retire_releases_the_charge() {
        // Twin directories run identical operations, one storing a
        // shared placeholder, one deep-stored expressions — the only
        // heap_bytes difference is the expression charge.
        let placeholder = expr();
        let mut charged = SubscriptionDirectory::new(1);
        let mut shared = SubscriptionDirectory::new(1);
        for i in 0..4 {
            let s = charged.place();
            charged.commit(s, sid(i), expr());
            let s = shared.place();
            shared.commit_shared(s, sid(i), Arc::clone(&placeholder));
        }
        assert!(
            charged.heap_bytes() > shared.heap_bytes(),
            "plain commits charge expression heap, shared ones do not"
        );
        for i in 0..4 {
            charged.retire(sid(i)).unwrap();
            shared.retire(sid(i)).unwrap();
        }
        assert_eq!(
            charged.heap_bytes(),
            shared.heap_bytes(),
            "retire released exactly what commit charged"
        );
    }

    #[test]
    fn predicate_round_trip() {
        let router = PredicateRouter::new(5);
        for shard in 0..5 {
            for local in [0usize, 1, 7, 100] {
                let g = router.global_pred(shard, PredicateId::from_index(local));
                assert_eq!(
                    router.split_pred(g),
                    (shard, PredicateId::from_index(local))
                );
            }
        }
        assert_eq!(router.shards(), 5);
    }

    #[test]
    fn predicate_global_bound_covers_issued_ids() {
        let router = PredicateRouter::new(3);
        assert_eq!(router.global_bound([4, 0, 2]), (4 - 1) * 3 + 1);
        assert_eq!(router.global_bound([0, 0, 0]), 0);
        let bound = router.global_bound([4, 0, 2]);
        for (shard, locals) in [(0usize, 4usize), (2, 2)] {
            for l in 0..locals {
                assert!(
                    router
                        .global_pred(shard, PredicateId::from_index(l))
                        .index()
                        < bound
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = PredicateRouter::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_directory_panics() {
        let _ = SubscriptionDirectory::new(0);
    }
}
