//! Global ↔ per-shard id routing for the sharded matching core.
//!
//! A [`crate::ShardedEngine`] (and the broker's per-shard lock layout
//! built on the same mapping) partitions subscriptions across `S`
//! independent inner engines. Each inner engine hands out its own dense
//! sequential [`SubscriptionId`]s and [`PredicateId`]s, so a routing
//! layer must translate between those *local* id spaces and the single
//! *global* id space the outside world sees.
//!
//! The mapping is pure arithmetic — **stride interleaving**:
//!
//! ```text
//! global = local * S + shard        shard = global % S
//!                                   local = global / S
//! ```
//!
//! This needs no table, no lock and no allocation, and it composes with
//! round-robin placement to a useful invariant: because inner engines
//! assign local ids sequentially, the *n*-th accepted subscription of a
//! round-robin sharded engine lands on shard `n % S` with local index
//! `n / S`, i.e. global id exactly `n` — the same id an unsharded
//! engine would have assigned. Sharded and unsharded matched-id sets
//! are therefore directly comparable (the shard-equivalence property
//! tests rely on this), and `S = 1` is the identity mapping.

use crate::{PredicateId, SubscriptionId};

/// Stateless arithmetic mapping between the global id space and the
/// per-shard `(shard, local id)` spaces of an `S`-way sharded engine.
///
/// # Examples
///
/// ```
/// use boolmatch_core::{ShardRouter, SubscriptionId};
///
/// let router = ShardRouter::new(4);
/// let global = router.global(3, SubscriptionId::from_index(10));
/// assert_eq!(global.index(), 43);
/// assert_eq!(router.split(global), (3, SubscriptionId::from_index(10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Creates a router for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The global subscription id of `local` on `shard`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `shard` is out of range.
    pub fn global(&self, shard: usize, local: SubscriptionId) -> SubscriptionId {
        debug_assert!(shard < self.shards);
        SubscriptionId::from_index(local.index() * self.shards + shard)
    }

    /// The shard a global subscription id lives on.
    pub fn shard_of(&self, global: SubscriptionId) -> usize {
        global.index() % self.shards
    }

    /// The shard-local subscription id behind a global id.
    pub fn local_of(&self, global: SubscriptionId) -> SubscriptionId {
        SubscriptionId::from_index(global.index() / self.shards)
    }

    /// Both routing halves of a global subscription id at once.
    pub fn split(&self, global: SubscriptionId) -> (usize, SubscriptionId) {
        (self.shard_of(global), self.local_of(global))
    }

    /// The global predicate id of `local` on `shard` (same stride
    /// interleaving as subscriptions; predicate spaces of different
    /// shards are disjoint even when they intern the same predicate).
    pub fn global_pred(&self, shard: usize, local: PredicateId) -> PredicateId {
        debug_assert!(shard < self.shards);
        PredicateId::from_index(local.index() * self.shards + shard)
    }

    /// Both routing halves of a global predicate id.
    pub fn split_pred(&self, global: PredicateId) -> (usize, PredicateId) {
        (
            global.index() % self.shards,
            PredicateId::from_index(global.index() / self.shards),
        )
    }

    /// The exclusive upper bound of the global id space, given each
    /// shard's exclusive local bound: the largest interleaved id any
    /// shard can have issued, plus one. Zero when every shard is empty.
    pub fn global_bound(&self, local_bounds: impl IntoIterator<Item = usize>) -> usize {
        local_bounds
            .into_iter()
            .enumerate()
            .filter(|&(_, bound)| bound > 0)
            .map(|(shard, bound)| (bound - 1) * self.shards + shard + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscription_round_trip() {
        let router = ShardRouter::new(3);
        for shard in 0..3 {
            for local in 0..10 {
                let g = router.global(shard, SubscriptionId::from_index(local));
                assert_eq!(router.shard_of(g), shard);
                assert_eq!(router.local_of(g), SubscriptionId::from_index(local));
                assert_eq!(router.split(g), (shard, SubscriptionId::from_index(local)));
            }
        }
    }

    #[test]
    fn predicate_round_trip() {
        let router = ShardRouter::new(5);
        for shard in 0..5 {
            for local in [0usize, 1, 7, 100] {
                let g = router.global_pred(shard, PredicateId::from_index(local));
                assert_eq!(
                    router.split_pred(g),
                    (shard, PredicateId::from_index(local))
                );
            }
        }
    }

    #[test]
    fn single_shard_is_identity() {
        let router = ShardRouter::new(1);
        let id = SubscriptionId::from_index(42);
        assert_eq!(router.global(0, id), id);
        assert_eq!(router.split(id), (0, id));
    }

    #[test]
    fn global_ids_are_unique_across_shards() {
        let router = ShardRouter::new(4);
        let mut seen = std::collections::HashSet::new();
        for shard in 0..4 {
            for local in 0..16 {
                assert!(seen.insert(router.global(shard, SubscriptionId::from_index(local))));
            }
        }
    }

    #[test]
    fn round_robin_matches_arrival_order() {
        // The invariant the shard-equivalence tests rely on: n-th
        // round-robin placement gets global id n.
        let router = ShardRouter::new(3);
        for n in 0..30usize {
            let (shard, local) = (n % 3, SubscriptionId::from_index(n / 3));
            assert_eq!(router.global(shard, local).index(), n);
        }
    }

    #[test]
    fn global_bound_covers_issued_ids() {
        let router = ShardRouter::new(3);
        // Shard 0 issued locals 0..4, shard 1 none, shard 2 locals 0..2.
        assert_eq!(router.global_bound([4, 0, 2]), (4 - 1) * 3 + 1);
        assert_eq!(router.global_bound([0, 0, 0]), 0);
        // Every issued global id is below the bound.
        let bound = router.global_bound([4, 0, 2]);
        for (shard, locals) in [(0usize, 4usize), (2, 2)] {
            for l in 0..locals {
                assert!(router.global(shard, SubscriptionId::from_index(l)).index() < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
