//! Per-event matching statistics.

use std::fmt;
use std::ops::Add;

/// Counters describing the work one event's match performed.
///
/// These are the quantities the paper's analysis (§2.2, §4.1) reasons
/// about: the counting algorithm's cost is `increments + comparisons`
/// (with `comparisons` covering *every* registered conjunction), the
/// variant's cost follows `candidates`, and the non-canonical engine's
/// cost follows `candidates`/`evaluations` of original subscriptions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Fulfilled predicates (phase-1 output size).
    pub fulfilled: usize,
    /// Candidate subscriptions / conjunctions touched in phase 2.
    pub candidates: usize,
    /// Boolean tree evaluations (non-canonical engine).
    pub evaluations: usize,
    /// Hit-counter increments (counting engines).
    pub increments: usize,
    /// Hit/count vector comparisons (counting engines).
    pub comparisons: usize,
    /// Subscriptions reported as matching.
    pub matched: usize,
    /// Shards skipped without any matching work because their attribute
    /// synopsis proved zero candidates (sharded engines only; always 0
    /// for flat engines).
    pub shards_pruned: usize,
}

impl Add for MatchStats {
    type Output = MatchStats;

    fn add(self, rhs: MatchStats) -> MatchStats {
        MatchStats {
            fulfilled: self.fulfilled + rhs.fulfilled,
            candidates: self.candidates + rhs.candidates,
            evaluations: self.evaluations + rhs.evaluations,
            increments: self.increments + rhs.increments,
            comparisons: self.comparisons + rhs.comparisons,
            matched: self.matched + rhs.matched,
            shards_pruned: self.shards_pruned + rhs.shards_pruned,
        }
    }
}

impl fmt::Display for MatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fulfilled={} candidates={} evaluations={} increments={} comparisons={} \
             matched={} shards_pruned={}",
            self.fulfilled,
            self.candidates,
            self.evaluations,
            self.increments,
            self.comparisons,
            self.matched,
            self.shards_pruned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_componentwise() {
        let a = MatchStats {
            fulfilled: 1,
            candidates: 2,
            evaluations: 3,
            increments: 4,
            comparisons: 5,
            matched: 6,
            shards_pruned: 7,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.fulfilled, 2);
        assert_eq!(c.matched, 12);
        assert_eq!(c.shards_pruned, 14);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = MatchStats::default().to_string();
        for field in [
            "fulfilled",
            "candidates",
            "evaluations",
            "increments",
            "comparisons",
            "matched",
            "shards_pruned",
        ] {
            assert!(s.contains(field), "missing {field}");
        }
    }
}
