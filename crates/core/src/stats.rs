//! Per-event matching statistics.

use std::fmt;
use std::ops::Add;

/// Counters describing the work one event's match performed.
///
/// These are the quantities the paper's analysis (§2.2, §4.1) reasons
/// about: the counting algorithm's cost is `increments + comparisons`
/// (with `comparisons` covering *every* registered conjunction), the
/// variant's cost follows `candidates`, and the non-canonical engine's
/// cost follows `candidates`/`evaluations` of original subscriptions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Fulfilled predicates (phase-1 output size).
    pub fulfilled: usize,
    /// Candidate subscriptions / conjunctions touched in phase 2.
    pub candidates: usize,
    /// Boolean tree evaluations (non-canonical engine).
    pub evaluations: usize,
    /// Hit-counter increments (counting engines).
    pub increments: usize,
    /// Hit/count vector comparisons (counting engines).
    pub comparisons: usize,
    /// Subscriptions reported as matching.
    pub matched: usize,
    /// Shards skipped without any matching work because their attribute
    /// synopsis proved zero candidates (sharded engines only; always 0
    /// for flat engines).
    pub shards_pruned: usize,
    /// Events matched through [`FilterEngine::match_batch`]; always 0
    /// on the per-event paths.
    ///
    /// [`FilterEngine::match_batch`]: crate::FilterEngine::match_batch
    pub batch_events: usize,
    /// Predicate-table (association) passes the batch path performed
    /// for those events. The amortization is observable as
    /// `batch_passes < batch_events`: a real batch kernel walks the
    /// table once per lane-chunk, while the per-event fallback pays one
    /// pass per event.
    pub batch_passes: usize,
}

impl Add for MatchStats {
    type Output = MatchStats;

    fn add(self, rhs: MatchStats) -> MatchStats {
        MatchStats {
            fulfilled: self.fulfilled + rhs.fulfilled,
            candidates: self.candidates + rhs.candidates,
            evaluations: self.evaluations + rhs.evaluations,
            increments: self.increments + rhs.increments,
            comparisons: self.comparisons + rhs.comparisons,
            matched: self.matched + rhs.matched,
            shards_pruned: self.shards_pruned + rhs.shards_pruned,
            batch_events: self.batch_events + rhs.batch_events,
            batch_passes: self.batch_passes + rhs.batch_passes,
        }
    }
}

impl fmt::Display for MatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fulfilled={} candidates={} evaluations={} increments={} comparisons={} \
             matched={} shards_pruned={} batch_events={} batch_passes={}",
            self.fulfilled,
            self.candidates,
            self.evaluations,
            self.increments,
            self.comparisons,
            self.matched,
            self.shards_pruned,
            self.batch_events,
            self.batch_passes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_componentwise() {
        let a = MatchStats {
            fulfilled: 1,
            candidates: 2,
            evaluations: 3,
            increments: 4,
            comparisons: 5,
            matched: 6,
            shards_pruned: 7,
            batch_events: 8,
            batch_passes: 9,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.fulfilled, 2);
        assert_eq!(c.matched, 12);
        assert_eq!(c.shards_pruned, 14);
        assert_eq!(c.batch_events, 16);
        assert_eq!(c.batch_passes, 18);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = MatchStats::default().to_string();
        for field in [
            "fulfilled",
            "candidates",
            "evaluations",
            "increments",
            "comparisons",
            "matched",
            "shards_pruned",
            "batch_events",
            "batch_passes",
        ] {
            assert!(s.contains(field), "missing {field}");
        }
    }
}
