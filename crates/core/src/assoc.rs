//! The predicate → subscription association table.

use std::collections::HashMap;

use crate::PredicateId;

/// Lists at least this long move to the geometric-growth spill map.
const LARGE_THRESHOLD: usize = 64;

/// The association table of paper Fig. 2: maps each predicate id to the
/// list of subscriptions (or DNF conjuncts, for the counting engines)
/// containing it.
///
/// Storage follows the paper's footnote 2 ("we use arrays instead of a
/// subscription list"): the common case — short lists; exactly one
/// entry in the paper's unique-predicate workloads — is an **exact-fit
/// boxed slice** (16 bytes of slot + 4 bytes per entry, no growth
/// slack, no allocator header bookkeeping in our accounting). Lists
/// that grow past [`LARGE_THRESHOLD`] (heavily shared predicates)
/// spill into a side map with ordinary amortized `Vec` growth, so
/// popular predicates never pay quadratic append cost.
#[derive(Debug, Clone, Default)]
pub(crate) struct AssocTable<T> {
    /// Dense by predicate index; exact-fit lists.
    small: Vec<Box<[T]>>,
    /// Spill storage for long lists, keyed by predicate index.
    large: HashMap<u32, Vec<T>>,
    postings: usize,
}

impl<T: Copy + PartialEq> AssocTable<T> {
    pub(crate) fn new() -> Self {
        AssocTable {
            small: Vec::new(),
            large: HashMap::new(),
            postings: 0,
        }
    }

    /// Appends `entry` to the list of `pred`.
    pub(crate) fn add(&mut self, pred: PredicateId, entry: T) {
        let idx = pred.index();
        if idx >= self.small.len() {
            self.small
                .resize_with(idx + 1, || Vec::new().into_boxed_slice());
        }
        self.postings += 1;

        if let Some(list) = self.large.get_mut(&(idx as u32)) {
            list.push(entry);
            return;
        }
        let current = &self.small[idx];
        if current.len() + 1 >= LARGE_THRESHOLD {
            // Promote to the spill map; the slot keeps an empty box.
            let mut list = Vec::with_capacity(current.len() * 2);
            list.extend_from_slice(current);
            list.push(entry);
            self.small[idx] = Vec::new().into_boxed_slice();
            self.large.insert(idx as u32, list);
            return;
        }
        // Exact-fit rebuild: short lists only, so this stays cheap.
        let mut grown = Vec::with_capacity(current.len() + 1);
        grown.extend_from_slice(current);
        grown.push(entry);
        self.small[idx] = grown.into_boxed_slice();
    }

    /// Removes one occurrence of `entry` from the list of `pred`;
    /// returns whether it was found. Order within a list is not
    /// preserved.
    pub(crate) fn remove(&mut self, pred: PredicateId, entry: T) -> bool {
        let idx = pred.index();
        if let Some(list) = self.large.get_mut(&(idx as u32)) {
            let Some(pos) = list.iter().position(|e| *e == entry) else {
                return false;
            };
            list.swap_remove(pos);
            self.postings -= 1;
            return true;
        }
        let Some(current) = self.small.get(idx) else {
            return false;
        };
        let Some(pos) = current.iter().position(|e| *e == entry) else {
            return false;
        };
        let mut shrunk = Vec::with_capacity(current.len() - 1);
        shrunk.extend_from_slice(&current[..pos]);
        shrunk.extend_from_slice(&current[pos + 1..]);
        self.small[idx] = shrunk.into_boxed_slice();
        self.postings -= 1;
        true
    }

    /// Removes all entries of `pred` for which `f` returns true;
    /// returns how many were removed. Used by counting unsubscription,
    /// where one original subscription owns many entries per predicate.
    pub(crate) fn remove_matching(&mut self, pred: PredicateId, f: impl Fn(&T) -> bool) -> usize {
        let idx = pred.index();
        if let Some(list) = self.large.get_mut(&(idx as u32)) {
            let before = list.len();
            list.retain(|e| !f(e));
            let removed = before - list.len();
            self.postings -= removed;
            return removed;
        }
        let Some(current) = self.small.get(idx) else {
            return 0;
        };
        let kept: Vec<T> = current.iter().copied().filter(|e| !f(e)).collect();
        let removed = current.len() - kept.len();
        if removed > 0 {
            self.small[idx] = kept.into_boxed_slice();
            self.postings -= removed;
        }
        removed
    }

    /// The entries associated with `pred` (empty slice when none).
    pub(crate) fn get(&self, pred: PredicateId) -> &[T] {
        let idx = pred.index();
        if let Some(list) = self.large.get(&(idx as u32)) {
            return list;
        }
        self.small.get(idx).map_or(&[], |b| &b[..])
    }

    /// Total number of postings across all lists.
    pub(crate) fn posting_count(&self) -> usize {
        self.postings
    }

    /// Approximate heap bytes.
    pub(crate) fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<T>();
        let small_slots = self.small.capacity() * std::mem::size_of::<Box<[T]>>();
        let small_entries: usize = self.small.iter().map(|b| b.len() * entry).sum();
        let large: usize = self
            .large
            .values()
            .map(|v| v.capacity() * entry + std::mem::size_of::<Vec<T>>() + 8)
            .sum();
        small_slots + small_entries + large
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> PredicateId {
        PredicateId::from_index(i)
    }

    #[test]
    fn add_and_get() {
        let mut t: AssocTable<u32> = AssocTable::new();
        t.add(pid(3), 10);
        t.add(pid(3), 11);
        t.add(pid(0), 12);
        assert_eq!(t.get(pid(3)), &[10, 11]);
        assert_eq!(t.get(pid(0)), &[12]);
        assert_eq!(t.get(pid(1)), &[] as &[u32]);
        assert_eq!(t.get(pid(99)), &[] as &[u32]);
        assert_eq!(t.posting_count(), 3);
    }

    #[test]
    fn remove_from_small_list() {
        let mut t: AssocTable<u32> = AssocTable::new();
        t.add(pid(0), 1);
        t.add(pid(0), 2);
        t.add(pid(0), 3);
        assert!(t.remove(pid(0), 1));
        assert!(!t.remove(pid(0), 1));
        let mut left = t.get(pid(0)).to_vec();
        left.sort();
        assert_eq!(left, vec![2, 3]);
        assert_eq!(t.posting_count(), 2);
    }

    #[test]
    fn remove_from_unknown_pred_is_false() {
        let mut t: AssocTable<u32> = AssocTable::new();
        assert!(!t.remove(pid(5), 1));
    }

    #[test]
    fn long_lists_spill_and_keep_working() {
        let mut t: AssocTable<u32> = AssocTable::new();
        let n = LARGE_THRESHOLD * 4;
        for i in 0..n as u32 {
            t.add(pid(7), i);
        }
        assert_eq!(t.get(pid(7)).len(), n);
        assert_eq!(t.posting_count(), n);
        // Every entry is present.
        let mut got = t.get(pid(7)).to_vec();
        got.sort();
        assert_eq!(got, (0..n as u32).collect::<Vec<_>>());
        // Removal still works in the spilled representation.
        assert!(t.remove(pid(7), 100));
        assert!(!t.remove(pid(7), 100));
        assert_eq!(t.posting_count(), n - 1);
    }

    #[test]
    fn remove_matching_works_in_both_tiers() {
        let mut t: AssocTable<u32> = AssocTable::new();
        for i in 0..10u32 {
            t.add(pid(0), i);
        }
        for i in 0..200u32 {
            t.add(pid(1), i);
        }
        assert_eq!(t.remove_matching(pid(0), |e| e % 2 == 0), 5);
        assert_eq!(t.get(pid(0)).len(), 5);
        assert_eq!(t.remove_matching(pid(1), |e| *e < 50), 50);
        assert_eq!(t.get(pid(1)).len(), 150);
        assert_eq!(t.posting_count(), 5 + 150);
        assert_eq!(t.remove_matching(pid(2), |_| true), 0);
    }

    #[test]
    fn exact_fit_memory_for_singleton_lists() {
        let mut t: AssocTable<u32> = AssocTable::new();
        for i in 0..1_000 {
            t.add(pid(i), i as u32);
        }
        // 16-byte slot + 4-byte entry per predicate, no slack.
        let per_pred = t.heap_bytes() as f64 / 1_000.0;
        assert!(
            per_pred <= 24.0,
            "expected near 20 B/pred for singleton lists, got {per_pred}"
        );
    }
}
