//! The matching engines of the `boolmatch` toolkit.
//!
//! This crate implements the core of the reproduced paper — *"On the
//! Benefits of Non-Canonical Filtering in Publish/Subscribe Systems"*
//! (Bittner & Hinze, ICDCSW 2005) — as three interchangeable engines
//! behind the [`FilterEngine`] trait:
//!
//! * [`NonCanonicalEngine`] — **the paper's contribution** (§3): stores
//!   each subscription as its original Boolean expression, byte-encoded
//!   in a [`arena::TreeArena`], and matches events in two phases:
//!   predicate matching over one-dimensional indexes, then evaluation of
//!   only the *candidate* subscription trees.
//! * [`CountingEngine`] — the classic counting algorithm baseline
//!   (Yan & García-Molina; Pereira et al.), which requires subscriptions
//!   to be **DNF-transformed** first and compares the hit counter of
//!   *every* registered conjunction per event.
//! * [`CountingVariantEngine`] — the paper's improved baseline (§3.3):
//!   identical tables, but only *candidate* conjunctions are compared.
//!
//! All three share identical phase-1 infrastructure (predicate
//! interning and the [`boolmatch_index::PredicateIndex`]), so their
//! phase-2 behaviour — what the paper's Fig. 3 measures — is directly
//! comparable: for the same subscription workload registered in the
//! same order, the engines assign identical [`PredicateId`]s and agree
//! exactly on which subscriptions match (property-tested).
//!
//! Matching is a **shared-read** operation: engines take `&self`, and
//! every per-event mutable buffer lives in a caller-owned
//! [`MatchScratch`] (one per thread), so publishers match concurrently
//! against one engine. Single-threaded callers can use the bundled
//! [`Matcher`] handle instead. See [`FilterEngine`] for the threading
//! model.
//!
//! For write scalability, any of the engines can be **sharded**: a
//! [`ShardedEngine`] partitions subscriptions across `S` inner engines
//! and is itself a [`FilterEngine`], so everything downstream works
//! against it transparently. Placement is load-aware (least-loaded
//! shard, round-robin tie-break) and routed through a
//! [`SubscriptionDirectory`] — a global-id indirection table that keeps
//! ids stable while placement changes, which is what enables **live
//! migration** ([`ShardedEngine::rebalance`]) and incremental
//! shard-count **resizing** ([`ShardedEngine::resize`]). The broker
//! builds its per-shard locking around the same directory.
//!
//! Fan-out is also **content-aware**: each shard keeps a
//! [`ShardSynopsis`] — a conservative per-attribute summary of its
//! residents' required conjuncts — and the publish paths skip shards
//! whose synopsis proves zero candidates (reported as
//! [`MatchStats::shards_pruned`]). An optional
//! [`PlacementPolicy::ClusterByAttribute`] co-places subscriptions
//! sharing a dominant equality attribute so that pruning actually
//! bites; see the `synopsis` module docs for the conservativeness
//! contract.
//!
//! For **intra-event** parallelism, one publish can fan out across the
//! shards: [`ShardedEngine::match_event_parallel`] matches every shard
//! concurrently (each worker drawing a warm [`MatchScratch`] from a
//! [`ScratchPool`]) and merges in shard order, so the answer is
//! bit-identical to the sequential walk. The broker runs the same
//! fan-out on a persistent [`WorkerPool`] with a [`FanOut`] rendezvous;
//! see the `pool` module docs.
//!
//! # Examples
//!
//! ```
//! use boolmatch_core::{FilterEngine, Matcher, NonCanonicalEngine};
//! use boolmatch_expr::Expr;
//! use boolmatch_types::Event;
//!
//! let mut engine = Matcher::new(NonCanonicalEngine::new());
//! let sub = engine.subscribe(&Expr::parse(
//!     "(price > 10 or price <= 5) and symbol = \"IBM\"",
//! )?)?;
//!
//! let event = Event::builder().attr("price", 12_i64).attr("symbol", "IBM").build();
//! let result = engine.match_event(&event);
//! assert_eq!(result.matched, vec![sub]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
mod assoc;
mod counting;
mod encode;
mod engine;
mod eval;
mod fulfilled;
mod ids;
mod interner;
mod memory;
mod noncanonical;
mod pool;
mod routing;
mod scratch;
mod shard;
mod stats;
mod synopsis;

pub use counting::{CountingConfig, CountingEngine, CountingVariantEngine};
pub use encode::{decode, encode, DecodeError, EncodeError, IdExpr};
pub use engine::{EngineKind, FilterEngine, MatchResult, SubscribeError, UnsubscribeError};
pub use eval::{eval_iterative, eval_recursive};
pub use fulfilled::FulfilledSet;
pub use ids::{PredicateId, SubscriptionId};
pub use interner::PredicateInterner;
pub use memory::MemoryUsage;
pub use noncanonical::{NonCanonicalConfig, NonCanonicalEngine};
pub use pool::{
    BatchScratchLease, BatchScratchPool, FanOut, FanOutPool, PooledBatchScratch, PooledScratch,
    ScratchLease, ScratchPool, SlotGuard, WorkerPool,
};
pub use routing::{
    lock_classes, PlacementPolicy, PredicateRouter, ShardTranslation, SubscriptionDirectory,
};
pub use scratch::{BatchScratch, MatchScratch, Matcher};
pub use shard::{BoxedEngine, ShardedEngine};
pub use stats::MatchStats;
pub use synopsis::{attribute_hash, dominant_eq_attr, ShardSynopsis};
