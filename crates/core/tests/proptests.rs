//! Property-based tests for the matching engines.
//!
//! The headline invariant: for any NOT-free subscription workload and
//! any event, all three engines — non-canonical, counting, counting
//! variant — report exactly the same matching subscriptions, and that
//! answer equals direct evaluation of each expression against the
//! event. (NOT-free because canonical engines implement negation via
//! operator complementation, which by design diverges from full
//! negation on events lacking the attribute; see `counting.rs` docs.)

use proptest::prelude::*;

use boolmatch_core::{
    decode, encode, eval_iterative, eval_recursive, CountingEngine, CountingVariantEngine,
    EngineKind, FilterEngine, FulfilledSet, IdExpr, Matcher, NonCanonicalEngine, PredicateId,
    ShardedEngine,
};
use boolmatch_expr::{CompareOp, Expr, Predicate};
use boolmatch_types::Event;

const ATTRS: u32 = 5;
const VALUES: i64 = 3;

fn arb_pred() -> impl Strategy<Value = Predicate> {
    (
        0..ATTRS,
        prop_oneof![
            Just(CompareOp::Eq),
            Just(CompareOp::Ne),
            Just(CompareOp::Lt),
            Just(CompareOp::Ge)
        ],
        0..VALUES,
    )
        .prop_map(|(a, op, v)| Predicate::new(&format!("x{a}"), op, v))
}

/// NOT-free expressions: And/Or over predicates.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = arb_pred().prop_map(Expr::pred);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            prop::collection::vec(inner, 2..4).prop_map(Expr::Or),
        ]
    })
}

/// Events carrying *every* attribute, so engine semantics coincide even
/// for complemented operators.
fn arb_total_event() -> impl Strategy<Value = Event> {
    prop::collection::vec(-1i64..VALUES + 1, ATTRS as usize).prop_map(|vals| {
        Event::from_pairs(
            vals.into_iter()
                .enumerate()
                .map(|(i, v)| (format!("x{i}"), v)),
        )
    })
}

fn all_engines() -> Vec<Matcher<Box<dyn FilterEngine + Send + Sync>>> {
    EngineKind::ALL.iter().map(|k| k.build_matcher()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_with_each_other_and_direct_eval(
        exprs in prop::collection::vec(arb_expr(), 1..12),
        events in prop::collection::vec(arb_total_event(), 1..6),
    ) {
        let mut engines = all_engines();
        for expr in &exprs {
            for engine in &mut engines {
                engine.subscribe(expr).unwrap();
            }
        }
        for event in &events {
            let want: Vec<usize> = exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| e.eval_event(event))
                .map(|(i, _)| i)
                .collect();
            for engine in &mut engines {
                let mut got: Vec<usize> = engine
                    .match_event(event)
                    .matched
                    .iter()
                    .map(|s| s.index())
                    .collect();
                got.sort();
                prop_assert_eq!(
                    &got, &want,
                    "{} disagrees on {}", engine.kind(), event
                );
            }
        }
    }

    #[test]
    fn predicate_ids_align_across_engines(
        exprs in prop::collection::vec(arb_expr(), 1..10),
    ) {
        // The Fig. 3 harness synthesizes one fulfilled set and feeds it
        // to all engines; that requires identical predicate interning
        // order for NOT-free workloads.
        let mut nc = Matcher::new(NonCanonicalEngine::new());
        let mut c = Matcher::new(CountingEngine::new());
        let mut v = Matcher::new(CountingVariantEngine::new());
        for expr in &exprs {
            nc.subscribe(expr).unwrap();
            c.subscribe(expr).unwrap();
            v.subscribe(expr).unwrap();
        }
        prop_assert_eq!(nc.predicate_count(), c.predicate_count());
        prop_assert_eq!(nc.predicate_universe(), c.predicate_universe());
        prop_assert_eq!(nc.predicate_universe(), v.predicate_universe());

        // Same fulfilled ids -> same matches.
        let universe = nc.predicate_universe();
        for seed in 0..4usize {
            let ids: Vec<PredicateId> = (0..universe)
                .filter(|i| (i + seed) % 3 == 0)
                .map(PredicateId::from_index)
                .collect();
            let set = FulfilledSet::from_ids(ids, universe);
            let mut m_nc = Vec::new();
            let mut m_c = Vec::new();
            let mut m_v = Vec::new();
            nc.phase2(&set, &mut m_nc);
            c.phase2(&set, &mut m_c);
            v.phase2(&set, &mut m_v);
            m_nc.sort();
            m_c.sort();
            m_v.sort();
            prop_assert_eq!(&m_nc, &m_c);
            prop_assert_eq!(&m_nc, &m_v);
        }
    }

    #[test]
    fn unsubscribe_equals_never_subscribed(
        keep in prop::collection::vec(arb_expr(), 1..6),
        drop_ in prop::collection::vec(arb_expr(), 1..6),
        events in prop::collection::vec(arb_total_event(), 1..4),
    ) {
        for kind in EngineKind::ALL {
            let mut with_churn = kind.build_matcher();
            let mut clean = kind.build_matcher();

            // Interleave: keep[0], drop[0], keep[1], drop[1], ...
            let mut drop_ids = Vec::new();
            let max = keep.len().max(drop_.len());
            let mut kept_exprs = Vec::new();
            for i in 0..max {
                if let Some(e) = keep.get(i) {
                    with_churn.subscribe(e).unwrap();
                    kept_exprs.push(e.clone());
                }
                if let Some(e) = drop_.get(i) {
                    drop_ids.push(with_churn.subscribe(e).unwrap());
                }
            }
            for id in drop_ids {
                with_churn.unsubscribe(id).unwrap();
            }
            let clean_ids: Vec<_> = kept_exprs
                .iter()
                .map(|e| clean.subscribe(e).unwrap())
                .collect();
            let _ = clean_ids;

            prop_assert_eq!(with_churn.subscription_count(), clean.subscription_count());
            prop_assert_eq!(with_churn.predicate_count(), clean.predicate_count());

            for event in &events {
                let mut got: Vec<Expr> = Vec::new();
                let churn_matches = with_churn.match_event(event).matched.len();
                let clean_matches = clean.match_event(event).matched.len();
                let _ = &mut got;
                prop_assert_eq!(
                    churn_matches, clean_matches,
                    "{} churn mismatch on {}", kind, event
                );
            }
        }
    }

    #[test]
    fn sharded_engines_match_exactly_like_unsharded(
        exprs in prop::collection::vec(arb_expr(), 1..16),
        unsub_mask in any::<u16>(),
        events in prop::collection::vec(arb_total_event(), 1..5),
    ) {
        // The shard refactor's headline invariant: a ShardedEngine over
        // any inner kind delivers exactly the unsharded matched-id sets
        // — including under unsubscribe churn, relying on round-robin +
        // stride routing assigning global id n to the n-th
        // subscription.
        for kind in EngineKind::ALL {
            let mut flat = kind.build_matcher();
            let mut sharded: Vec<Matcher<ShardedEngine>> = [1usize, 3, 8]
                .iter()
                .map(|&s| Matcher::new(ShardedEngine::new(kind, s)))
                .collect();
            let mut ids = Vec::new();
            for expr in &exprs {
                let id = flat.subscribe(expr).unwrap();
                for m in &mut sharded {
                    prop_assert_eq!(m.subscribe(expr).unwrap(), id);
                }
                ids.push(id);
            }
            for (i, id) in ids.iter().enumerate() {
                if unsub_mask & (1 << (i % 16)) != 0 {
                    flat.unsubscribe(*id).unwrap();
                    for m in &mut sharded {
                        m.unsubscribe(*id).unwrap();
                    }
                }
            }
            for event in &events {
                let mut want = flat.match_event(event).matched;
                want.sort();
                for m in &mut sharded {
                    let shards = m.engine().shard_count();
                    let mut got = m.match_event(event).matched;
                    got.sort();
                    prop_assert_eq!(
                        &got, &want,
                        "{} over {} shards disagrees on {}", kind, shards, event
                    );
                }
            }
        }
    }

    #[test]
    fn encoded_evaluators_agree_with_boxed_ast(
        tree in arb_id_expr(),
        fulfilled_bits in any::<u32>(),
    ) {
        let bytes = encode(&tree).unwrap();
        prop_assert_eq!(decode(&bytes).unwrap(), tree.clone());
        let ids = (0..32)
            .filter(|i| fulfilled_bits & (1 << i) != 0)
            .map(PredicateId::from_index);
        let set = FulfilledSet::from_ids(ids, 32);
        let want = tree.eval(&set);
        prop_assert_eq!(eval_recursive(&bytes, &set), want);
        prop_assert_eq!(eval_iterative(&bytes, &set), want);
    }

    #[test]
    fn match_stats_are_consistent(
        exprs in prop::collection::vec(arb_expr(), 1..10),
        event in arb_total_event(),
    ) {
        for kind in EngineKind::ALL {
            let mut engine = kind.build_matcher();
            for e in &exprs {
                engine.subscribe(e).unwrap();
            }
            let r = engine.match_event(&event);
            prop_assert_eq!(r.stats.matched, r.matched.len());
            prop_assert!(r.stats.matched <= exprs.len());
            match kind {
                EngineKind::NonCanonical => {
                    prop_assert!(r.stats.evaluations == r.stats.candidates);
                    prop_assert!(r.stats.matched <= r.stats.evaluations);
                }
                EngineKind::Counting => {
                    // Scans every flat conjunction.
                    prop_assert!(r.stats.comparisons >= r.stats.candidates);
                }
                EngineKind::CountingVariant => {
                    prop_assert_eq!(r.stats.comparisons, r.stats.candidates);
                }
            }
        }
    }
}

fn arb_id_expr() -> impl Strategy<Value = IdExpr> {
    let leaf = (0..32usize).prop_map(|i| IdExpr::Pred(PredicateId::from_index(i)));
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(IdExpr::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(IdExpr::Or),
            inner.prop_map(|e| IdExpr::Not(Box::new(e))),
        ]
    })
}
