//! Events: the messages published through the system.

use std::fmt;
use std::sync::Arc;

use crate::Value;

/// An immutable event message: a set of named attribute values.
///
/// Attributes are stored sorted by name, so lookup is `O(log n)` and
/// iteration order is deterministic. Events are cheap to clone once
/// built (the attribute table is reference counted), which is what the
/// broker relies on when fanning an event out to many subscribers.
///
/// # Examples
///
/// ```
/// use boolmatch_types::{Event, Value};
///
/// let e = Event::builder()
///     .attr("price", 42.5)
///     .attr("symbol", "IBM")
///     .build();
/// assert_eq!(e.get("price"), Some(&Value::from(42.5)));
/// assert!(e.contains("symbol"));
/// assert_eq!(e.get("missing"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Sorted by attribute name; names are unique.
    attrs: Arc<[(Arc<str>, Value)]>,
}

impl Event {
    /// Starts building an event.
    pub fn builder() -> EventBuilder {
        EventBuilder::new()
    }

    /// Builds an event directly from an iterator of `(name, value)`
    /// pairs. Later duplicates win, mirroring [`EventBuilder::attr`].
    pub fn from_pairs<I, N, V>(pairs: I) -> Event
    where
        I: IntoIterator<Item = (N, V)>,
        N: AsRef<str>,
        V: Into<Value>,
    {
        let mut b = EventBuilder::new();
        for (n, v) in pairs {
            b = b.attr(n.as_ref(), v);
        }
        b.build()
    }

    /// Looks up an attribute value by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs
            .binary_search_by(|(n, _)| n.as_ref().cmp(name))
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Whether the event carries an attribute named `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the event has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Approximate heap bytes owned by this event.
    pub fn heap_bytes(&self) -> usize {
        self.attrs
            .iter()
            .map(|(n, v)| n.len() + 16 + v.heap_bytes())
            .sum::<usize>()
            + self.attrs.len() * std::mem::size_of::<(Arc<str>, Value)>()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} = {v}")?;
        }
        write!(f, "}}")
    }
}

impl<N: AsRef<str>, V: Into<Value>> FromIterator<(N, V)> for Event {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Self {
        Event::from_pairs(iter)
    }
}

/// Serializes as a map from attribute name to value.
#[cfg(feature = "serde")]
impl serde::Serialize for Event {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (name, value) in self.iter() {
            map.serialize_entry(name, value)?;
        }
        map.end()
    }
}

/// Deserializes from a map; duplicate keys keep the last value, like
/// [`EventBuilder`].
#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Event {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Visitor;
        impl<'de> serde::de::Visitor<'de> for Visitor {
            type Value = Event;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map of attribute names to values")
            }

            fn visit_map<A: serde::de::MapAccess<'de>>(
                self,
                mut access: A,
            ) -> Result<Event, A::Error> {
                let mut builder = EventBuilder::new();
                while let Some((name, value)) = access.next_entry::<String, Value>()? {
                    builder.set(&name, value);
                }
                Ok(builder.build())
            }
        }
        deserializer.deserialize_map(Visitor)
    }
}

/// Incremental construction of an [`Event`].
///
/// Setting the same attribute twice keeps the latest value.
///
/// # Examples
///
/// ```
/// use boolmatch_types::Event;
///
/// let e = Event::builder()
///     .attr("a", 1_i64)
///     .attr("a", 2_i64)
///     .build();
/// assert_eq!(e.get("a").and_then(|v| v.as_int()), Some(2));
/// ```
#[derive(Debug, Default, Clone)]
pub struct EventBuilder {
    attrs: Vec<(Arc<str>, Value)>,
}

impl EventBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets attribute `name` to `value`, replacing any earlier value.
    #[must_use]
    pub fn attr(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Non-consuming form of [`EventBuilder::attr`], convenient in loops.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) -> &mut Self {
        self.attrs.push((Arc::from(name), value.into()));
        self
    }

    /// Number of attributes staged so far (duplicates counted once at
    /// build time, not here).
    pub fn staged(&self) -> usize {
        self.attrs.len()
    }

    /// Finishes the event: sorts attributes and deduplicates names,
    /// keeping the value set last.
    pub fn build(mut self) -> Event {
        // Stable sort + reverse dedup keeps the *last* write per name.
        self.attrs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut deduped: Vec<(Arc<str>, Value)> = Vec::with_capacity(self.attrs.len());
        for (n, v) in self.attrs {
            match deduped.last_mut() {
                Some(last) if last.0 == n => last.1 = v,
                _ => deduped.push((n, v)),
            }
        }
        Event {
            attrs: deduped.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_and_dedups() {
        let e = Event::builder()
            .attr("z", 1_i64)
            .attr("a", 2_i64)
            .attr("z", 3_i64)
            .build();
        assert_eq!(e.len(), 2);
        let names: Vec<_> = e.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(
            e.get("z").and_then(super::super::value::Value::as_int),
            Some(3)
        );
    }

    #[test]
    fn get_missing_is_none() {
        let e = Event::builder().attr("a", 1_i64).build();
        assert!(e.get("b").is_none());
        assert!(!e.contains("b"));
    }

    #[test]
    fn empty_event() {
        let e = Event::builder().build();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.to_string(), "{}");
    }

    #[test]
    fn from_pairs_collects() {
        let e: Event = vec![("b", 2_i64), ("a", 1_i64)].into_iter().collect();
        assert_eq!(e.len(), 2);
        assert_eq!(
            e.get("a").and_then(super::super::value::Value::as_int),
            Some(1)
        );
    }

    #[test]
    fn display_is_sorted_and_typed() {
        let e = Event::builder().attr("b", "x").attr("a", 1.5).build();
        assert_eq!(e.to_string(), "{a = 1.5, b = \"x\"}");
    }

    #[test]
    fn clone_shares_storage() {
        let e = Event::builder().attr("a", "payload").build();
        let f = e.clone();
        assert_eq!(e, f);
        // Arc means cloning does not duplicate attribute storage.
        assert!(Arc::ptr_eq(&e.attrs, &f.attrs));
    }

    #[test]
    fn mixed_value_kinds() {
        let e = Event::builder()
            .attr("i", 1_i64)
            .attr("f", 1.0)
            .attr("s", "one")
            .attr("b", true)
            .build();
        assert_eq!(e.get("i").unwrap().kind().name(), "int");
        assert_eq!(e.get("f").unwrap().kind().name(), "float");
        assert_eq!(e.get("s").unwrap().kind().name(), "str");
        assert_eq!(e.get("b").unwrap().kind().name(), "bool");
    }
}
