//! Error types for the data model.

use std::error::Error;
use std::fmt;

use crate::ValueKind;

/// An attribute was used with a value of the wrong kind.
///
/// Produced by [`crate::Schema`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeMismatch {
    /// The attribute involved.
    pub attribute: String,
    /// The kind the schema declares.
    pub expected: ValueKind,
    /// The kind that was actually supplied.
    pub found: ValueKind,
}

impl fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attribute `{}` expects {} values but {} was supplied",
            self.attribute, self.expected, self.found
        )
    }
}

impl Error for TypeMismatch {}

/// Errors raised while building or applying a [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The same attribute was declared twice with different kinds.
    ConflictingDeclaration {
        /// The attribute declared twice.
        attribute: String,
        /// Kind of the first declaration.
        first: ValueKind,
        /// Kind of the conflicting declaration.
        second: ValueKind,
    },
    /// An event or predicate used an attribute the schema does not know
    /// (only raised by strict validation).
    UnknownAttribute {
        /// The offending attribute.
        attribute: String,
    },
    /// An attribute carried a value of the wrong kind.
    Mismatch(TypeMismatch),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::ConflictingDeclaration {
                attribute,
                first,
                second,
            } => write!(
                f,
                "attribute `{attribute}` declared as both {first} and {second}"
            ),
            SchemaError::UnknownAttribute { attribute } => {
                write!(f, "attribute `{attribute}` is not declared in the schema")
            }
            SchemaError::Mismatch(m) => m.fmt(f),
        }
    }
}

impl Error for SchemaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchemaError::Mismatch(m) => Some(m),
            _ => None,
        }
    }
}

impl From<TypeMismatch> for SchemaError {
    fn from(m: TypeMismatch) -> Self {
        SchemaError::Mismatch(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let m = TypeMismatch {
            attribute: "price".into(),
            expected: ValueKind::Float,
            found: ValueKind::Str,
        };
        assert_eq!(
            m.to_string(),
            "attribute `price` expects float values but str was supplied"
        );

        let e = SchemaError::UnknownAttribute {
            attribute: "x".into(),
        };
        assert!(e.to_string().contains("not declared"));
    }

    #[test]
    fn schema_error_source_chain() {
        let m = TypeMismatch {
            attribute: "a".into(),
            expected: ValueKind::Int,
            found: ValueKind::Bool,
        };
        let e: SchemaError = m.clone().into();
        assert!(e.source().is_some());
        assert_eq!(
            e.source().unwrap().to_string(),
            SchemaError::Mismatch(m).to_string()
        );
    }
}
