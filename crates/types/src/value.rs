//! The dynamically typed attribute value.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a [`Value`], without the payload.
///
/// Used by [`crate::Schema`] to declare attribute types and by the
/// matching engines to partition their per-attribute indexes.
///
/// # Examples
///
/// ```
/// use boolmatch_types::{Value, ValueKind};
///
/// assert_eq!(Value::from(3_i64).kind(), ValueKind::Int);
/// assert_eq!(ValueKind::Str.to_string(), "str");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ValueKind {
    /// Boolean values.
    Bool,
    /// Signed 64-bit integers.
    Int,
    /// IEEE-754 double precision floats.
    Float,
    /// UTF-8 strings.
    Str,
}

impl ValueKind {
    /// Canonical lower-case name of the kind, as used by the subscription
    /// language and error messages.
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Bool => "bool",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "str",
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed attribute value.
///
/// `Value` is the payload of event attributes and of predicate constants.
/// It is **strictly typed**: an `Int` never equals a `Float`, even when
/// numerically identical. The matching engines rely on this — each
/// attribute index is keyed by `Value` and a predicate only matches event
/// values of its own kind. Use [`Value::coerce_to`] when lenient numeric
/// conversion is wanted at the edges of the system.
///
/// # Total order
///
/// `Value` implements [`Ord`] so it can key B+ trees and sorted indexes.
/// Values of different kinds order by kind
/// (`Bool < Int < Float < Str`); floats use [`f64::total_cmp`], which
/// places `-0.0 < 0.0` and `NaN` after `+∞`. [`Eq`] and [`Hash`] are
/// consistent with this order (floats compare and hash by bit pattern).
///
/// # Examples
///
/// ```
/// use boolmatch_types::Value;
///
/// let a = Value::from(10_i64);
/// let b = Value::from(20_i64);
/// assert!(a < b);
/// assert_ne!(Value::from(10_i64), Value::from(10.0));
/// assert_eq!(Value::from("x").to_string(), "\"x\"");
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(untagged))]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    Int(i64),
    /// An IEEE-754 double precision float.
    Float(f64),
    /// A UTF-8 string. Reference counted so that events, predicates and
    /// indexes can share one allocation.
    Str(Arc<str>),
}

impl Value {
    /// The [`ValueKind`] of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Attempts to convert this value to another kind.
    ///
    /// Numeric conversions (`Int` ↔ `Float`) succeed when the payload is
    /// exactly representable in the target type; everything else succeeds
    /// only when the kinds already agree. Returns `None` when the
    /// conversion would be lossy or is unsupported.
    ///
    /// # Examples
    ///
    /// ```
    /// use boolmatch_types::{Value, ValueKind};
    ///
    /// assert_eq!(Value::from(4_i64).coerce_to(ValueKind::Float), Some(Value::from(4.0)));
    /// assert_eq!(Value::from(0.5).coerce_to(ValueKind::Int), None);
    /// ```
    pub fn coerce_to(&self, kind: ValueKind) -> Option<Value> {
        if self.kind() == kind {
            return Some(self.clone());
        }
        match (self, kind) {
            (Value::Int(i), ValueKind::Float) => {
                let x = *i as f64;
                // i128 comparison avoids the saturating f64 -> i64 cast
                // falsely round-tripping values near i64::MAX.
                ((x as i128) == (*i as i128)).then_some(Value::Float(x))
            }
            (Value::Float(x), ValueKind::Int) => {
                // Exactly representable: in i64 range (upper bound 2^63
                // is exclusive — `i64::MAX as f64` rounds up to it) and
                // bit-identical after the round trip, which also rejects
                // -0.0 (its sign bit cannot survive in an integer).
                let in_range = *x >= -(2f64.powi(63)) && *x < 2f64.powi(63);
                (in_range && ((*x as i64) as f64).to_bits() == x.to_bits())
                    .then_some(Value::Int(*x as i64))
            }
            _ => None,
        }
    }

    /// Approximate number of heap bytes owned by this value, used by the
    /// engines' memory accounting.
    pub fn heap_bytes(&self) -> usize {
        match self {
            // Arc<str> header (strong, weak counts) plus payload.
            Value::Str(s) => s.len() + 16,
            _ => 0,
        }
    }

    fn kind_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.kind_rank().hash(state);
        match self {
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    // Keep the kind visible when round-tripping through the
                    // subscription language.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::Float(f64::from(x))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(Value::from(true).kind(), ValueKind::Bool);
        assert_eq!(Value::from(1_i64).kind(), ValueKind::Int);
        assert_eq!(Value::from(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::from("a").kind(), ValueKind::Str);
    }

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(7_i64).as_int(), Some(7));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(7_i64).as_str(), None);
        assert_eq!(Value::from("hi").as_int(), None);
    }

    #[test]
    fn strict_typing_int_vs_float() {
        assert_ne!(Value::from(10_i64), Value::from(10.0));
        // different kinds order by kind rank
        assert!(Value::from(10_i64) < Value::from(0.0));
    }

    #[test]
    fn total_order_within_kind() {
        assert!(Value::from(1_i64) < Value::from(2_i64));
        assert!(Value::from(-1.5) < Value::from(0.0));
        assert!(Value::from("abc") < Value::from("abd"));
        assert!(Value::from(false) < Value::from(true));
    }

    #[test]
    fn float_total_order_nan_and_zero() {
        let neg_zero = Value::from(-0.0);
        let pos_zero = Value::from(0.0);
        assert!(neg_zero < pos_zero);
        assert_ne!(neg_zero, pos_zero);

        let nan = Value::from(f64::NAN);
        let inf = Value::from(f64::INFINITY);
        assert!(nan > inf);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn hash_consistent_with_eq() {
        let a = Value::from("shared");
        let b = Value::from("shared");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));

        let x = Value::from(3.5);
        let y = Value::from(3.5);
        assert_eq!(hash_of(&x), hash_of(&y));
    }

    #[test]
    fn coercion_int_float() {
        assert_eq!(
            Value::from(4_i64).coerce_to(ValueKind::Float),
            Some(Value::from(4.0))
        );
        assert_eq!(
            Value::from(4.0).coerce_to(ValueKind::Int),
            Some(Value::from(4_i64))
        );
        assert_eq!(Value::from(0.5).coerce_to(ValueKind::Int), None);
        assert_eq!(Value::from("x").coerce_to(ValueKind::Int), None);
        // Huge integers lose precision as f64 and must refuse to coerce.
        assert_eq!(Value::from(i64::MAX).coerce_to(ValueKind::Float), None);
        // Identity coercion always succeeds.
        assert_eq!(
            Value::from("x").coerce_to(ValueKind::Str),
            Some(Value::from("x"))
        );
    }

    #[test]
    fn display_round_trip_forms() {
        assert_eq!(Value::from(3_i64).to_string(), "3");
        assert_eq!(Value::from(3.0).to_string(), "3.0");
        assert_eq!(Value::from(3.25).to_string(), "3.25");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from("a\"b").to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn heap_bytes_only_for_strings() {
        assert_eq!(Value::from(1_i64).heap_bytes(), 0);
        assert!(Value::from("abcd").heap_bytes() >= 4);
    }
}
