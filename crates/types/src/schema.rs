//! Optional attribute typing.

use std::collections::HashMap;

use crate::{Event, SchemaError, TypeMismatch, ValueKind};

/// Declares the kind of each attribute and validates events against it.
///
/// Schemas are optional: the engines work fine without one because
/// [`crate::Value`] is strictly typed (a predicate on an `int` attribute
/// simply never matches a `str` value). A schema catches such mistakes at
/// the boundary instead of silently never matching.
///
/// # Examples
///
/// ```
/// use boolmatch_types::{Event, Schema, ValueKind};
///
/// let schema = Schema::builder()
///     .attr("price", ValueKind::Float)
///     .attr("symbol", ValueKind::Str)
///     .build()?;
///
/// let ok = Event::builder().attr("price", 10.0).build();
/// assert!(schema.validate_event(&ok).is_ok());
///
/// let bad = Event::builder().attr("price", "ten").build();
/// assert!(schema.validate_event(&bad).is_err());
/// # Ok::<(), boolmatch_types::SchemaError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Schema {
    kinds: HashMap<String, ValueKind>,
    strict: bool,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// The declared kind of `attribute`, if any.
    pub fn kind_of(&self, attribute: &str) -> Option<ValueKind> {
        self.kinds.get(attribute).copied()
    }

    /// Number of declared attributes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no attributes are declared.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether undeclared attributes are rejected.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Checks one attribute/kind pair against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Mismatch`] when the kinds disagree, and
    /// [`SchemaError::UnknownAttribute`] for undeclared attributes when
    /// the schema is strict.
    pub fn check(&self, attribute: &str, found: ValueKind) -> Result<(), SchemaError> {
        match self.kinds.get(attribute) {
            Some(&expected) if expected != found => Err(TypeMismatch {
                attribute: attribute.to_owned(),
                expected,
                found,
            }
            .into()),
            Some(_) => Ok(()),
            None if self.strict => Err(SchemaError::UnknownAttribute {
                attribute: attribute.to_owned(),
            }),
            None => Ok(()),
        }
    }

    /// Validates every attribute of `event`.
    ///
    /// # Errors
    ///
    /// Returns the first failing attribute's error; see [`Schema::check`].
    pub fn validate_event(&self, event: &Event) -> Result<(), SchemaError> {
        for (name, value) in event.iter() {
            self.check(name, value.kind())?;
        }
        Ok(())
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Default, Clone)]
pub struct SchemaBuilder {
    decls: Vec<(String, ValueKind)>,
    strict: bool,
}

impl SchemaBuilder {
    /// Declares `attribute` to carry values of `kind`.
    #[must_use]
    pub fn attr(mut self, attribute: &str, kind: ValueKind) -> Self {
        self.decls.push((attribute.to_owned(), kind));
        self
    }

    /// Makes the schema reject attributes that were never declared.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Finishes the schema.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::ConflictingDeclaration`] when an attribute
    /// is declared twice with different kinds.
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut kinds = HashMap::with_capacity(self.decls.len());
        for (name, kind) in self.decls {
            if let Some(&prev) = kinds.get(&name) {
                if prev != kind {
                    return Err(SchemaError::ConflictingDeclaration {
                        attribute: name,
                        first: prev,
                        second: kind,
                    });
                }
            }
            kinds.insert(name, kind);
        }
        Ok(Schema {
            kinds,
            strict: self.strict,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn schema() -> Schema {
        Schema::builder()
            .attr("price", ValueKind::Float)
            .attr("volume", ValueKind::Int)
            .build()
            .unwrap()
    }

    #[test]
    fn accepts_conforming_events() {
        let e = Event::builder()
            .attr("price", 1.0)
            .attr("volume", 2_i64)
            .build();
        assert!(schema().validate_event(&e).is_ok());
    }

    #[test]
    fn rejects_kind_mismatch() {
        let e = Event::builder().attr("volume", 2.0).build();
        let err = schema().validate_event(&e).unwrap_err();
        assert!(matches!(err, SchemaError::Mismatch(_)));
    }

    #[test]
    fn lenient_allows_unknown_attributes() {
        let e = Event::builder().attr("other", true).build();
        assert!(schema().validate_event(&e).is_ok());
    }

    #[test]
    fn strict_rejects_unknown_attributes() {
        let s = Schema::builder()
            .attr("price", ValueKind::Float)
            .strict()
            .build()
            .unwrap();
        let e = Event::builder().attr("other", true).build();
        assert!(matches!(
            s.validate_event(&e),
            Err(SchemaError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_identical_declarations_are_fine() {
        let s = Schema::builder()
            .attr("a", ValueKind::Int)
            .attr("a", ValueKind::Int)
            .build()
            .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_declarations_error() {
        let err = Schema::builder()
            .attr("a", ValueKind::Int)
            .attr("a", ValueKind::Str)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::ConflictingDeclaration { .. }));
    }

    #[test]
    fn kind_of_lookup() {
        assert_eq!(schema().kind_of("price"), Some(ValueKind::Float));
        assert_eq!(schema().kind_of("nope"), None);
    }
}
