//! Typed values, attributes and events for the `boolmatch` toolkit.
//!
//! This crate is the bottom layer of the `boolmatch` workspace, the Rust
//! reproduction of *"On the Benefits of Non-Canonical Filtering in
//! Publish/Subscribe Systems"* (Bittner & Hinze, ICDCSW 2005). It defines
//! the data model every other crate builds on:
//!
//! * [`Value`] — a dynamically typed, totally ordered, hashable attribute
//!   value (integer, float, string or boolean),
//! * [`Event`] — an immutable set of named attribute values, published by
//!   producers and filtered against subscriptions,
//! * [`EventBuilder`] — ergonomic construction of events,
//! * [`AttrId`] / [`AttrInterner`] — compact interned attribute names used
//!   by the matching engines,
//! * [`Schema`] — optional attribute typing and validation.
//!
//! # Examples
//!
//! ```
//! use boolmatch_types::{Event, Value};
//!
//! let event = Event::builder()
//!     .attr("symbol", "IBM")
//!     .attr("price", 84.25)
//!     .attr("volume", 1200_i64)
//!     .build();
//!
//! assert_eq!(event.get("symbol"), Some(&Value::from("IBM")));
//! assert_eq!(event.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attr;
mod error;
mod event;
mod schema;
mod value;

pub use attr::{AttrId, AttrInterner};
pub use error::{SchemaError, TypeMismatch};
pub use event::{Event, EventBuilder};
pub use schema::{Schema, SchemaBuilder};
pub use value::{Value, ValueKind};
