//! Interned attribute names.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compact identifier for an interned attribute name.
///
/// The matching engines index predicates per attribute; interning the
/// attribute names once lets every table key on a 4-byte id instead of a
/// string. Ids are dense (`0..len`) and stable for the lifetime of the
/// [`AttrInterner`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrId(u32);

impl AttrId {
    /// The raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Callers are responsible for only
    /// using indexes handed out by an [`AttrInterner`].
    pub fn from_index(index: usize) -> AttrId {
        AttrId(u32::try_from(index).expect("more than u32::MAX attributes"))
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

/// A bidirectional map between attribute names and dense [`AttrId`]s.
///
/// # Examples
///
/// ```
/// use boolmatch_types::AttrInterner;
///
/// let mut interner = AttrInterner::new();
/// let price = interner.intern("price");
/// assert_eq!(interner.intern("price"), price);
/// assert_eq!(interner.resolve(price), "price");
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct AttrInterner {
    by_name: HashMap<Arc<str>, AttrId>,
    names: Vec<Arc<str>>,
}

impl AttrInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Repeated calls with the same
    /// name return the same id.
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let arc: Arc<str> = Arc::from(name);
        let id = AttrId::from_index(self.names.len());
        self.names.push(Arc::clone(&arc));
        self.by_name.insert(arc, id);
        id
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: AttrId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId::from_index(i), n.as_ref()))
    }

    /// Approximate heap bytes used, for engine memory accounting.
    pub fn heap_bytes(&self) -> usize {
        let names: usize = self.names.iter().map(|n| n.len() + 16).sum();
        names
            + self.names.capacity() * std::mem::size_of::<Arc<str>>()
            + self.by_name.capacity()
                * (std::mem::size_of::<Arc<str>>() + std::mem::size_of::<AttrId>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = AttrInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = AttrInterner::new();
        let id = i.intern("volume");
        assert_eq!(i.resolve(id), "volume");
        assert_eq!(i.get("volume"), Some(id));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut i = AttrInterner::new();
        for n in 0..100 {
            let id = i.intern(&format!("a{n}"));
            assert_eq!(id.index(), n);
        }
        let collected: Vec<_> = i.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_interner() {
        let i = AttrInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
