//! Round-trip tests for the `serde` feature
//! (`cargo test -p boolmatch-types --features serde`).

use boolmatch_types::{Event, Value, ValueKind};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn value_round_trips_all_kinds() {
    for v in [
        Value::from(true),
        Value::from(-42_i64),
        Value::from(3.25),
        Value::from("kererū"),
    ] {
        assert_eq!(round_trip(&v), v);
    }
}

#[test]
fn value_kind_round_trips() {
    for k in [
        ValueKind::Bool,
        ValueKind::Int,
        ValueKind::Float,
        ValueKind::Str,
    ] {
        assert_eq!(round_trip(&k), k);
    }
}

#[test]
fn event_serializes_as_a_sorted_map() {
    let e = Event::builder()
        .attr("z", 1_i64)
        .attr("a", "x")
        .attr("m", true)
        .build();
    let json = serde_json::to_value(&e).unwrap();
    let obj = json.as_object().unwrap();
    let keys: Vec<&String> = obj.keys().collect();
    assert_eq!(keys, vec!["a", "m", "z"]);
}

#[test]
fn event_round_trips() {
    let e = Event::builder()
        .attr("price", 10.5)
        .attr("symbol", "IBM")
        .attr("volume", 300_i64)
        .attr("open", false)
        .build();
    let back = round_trip(&e);
    assert_eq!(back, e);
}

#[test]
fn event_deserializes_from_plain_json() {
    let e: Event =
        serde_json::from_str(r#"{"symbol": "NZX", "price": 1.5, "volume": 10}"#).unwrap();
    assert_eq!(e.get("symbol"), Some(&Value::from("NZX")));
    assert_eq!(e.get("price"), Some(&Value::from(1.5)));
    // Plain JSON integers arrive as Int.
    assert_eq!(e.get("volume"), Some(&Value::from(10_i64)));
}

#[test]
fn empty_event_round_trips() {
    let e = Event::builder().build();
    assert_eq!(round_trip(&e), e);
    assert_eq!(serde_json::to_string(&e).unwrap(), "{}");
}
