//! Property-based tests for the value model: the total order and the
//! `Eq`/`Hash` consistency that the index structures depend on.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;

use boolmatch_types::{Event, Value, ValueKind};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        any::<f64>().prop_map(Value::from),
        "[a-z]{0,8}".prop_map(|s| Value::from(s.as_str())),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => {
                prop_assert_eq!(b.cmp(&a), Ordering::Equal);
                prop_assert_eq!(&a, &b);
            }
        }
    }

    #[test]
    fn order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn reflexive_even_for_nan(x in any::<f64>()) {
        let v = Value::from(x);
        prop_assert_eq!(&v, &v.clone());
        prop_assert_eq!(v.cmp(&v.clone()), Ordering::Equal);
    }

    #[test]
    fn coercion_round_trips_when_it_succeeds(v in arb_value()) {
        for kind in [ValueKind::Bool, ValueKind::Int, ValueKind::Float, ValueKind::Str] {
            if let Some(coerced) = v.coerce_to(kind) {
                prop_assert_eq!(coerced.kind(), kind);
                // Coercing back must recover the original exactly.
                let back = coerced.coerce_to(v.kind()).expect("reverse coercion");
                prop_assert_eq!(back, v.clone());
            }
        }
    }

    #[test]
    fn event_lookup_agrees_with_iteration(
        pairs in prop::collection::vec(("[a-c]{1,2}", any::<i64>()), 0..12)
    ) {
        let event = Event::from_pairs(pairs.iter().map(|(n, v)| (n.as_str(), *v)));
        // every iterated pair is gettable
        for (name, value) in event.iter() {
            prop_assert_eq!(event.get(name), Some(value));
        }
        // names are strictly sorted (unique)
        let names: Vec<&str> = event.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(names, sorted);
        // last write wins
        if let Some((name, _)) = pairs.last() {
            let expected = pairs.iter().rev().find(|(n, _)| n == name).unwrap().1;
            prop_assert_eq!(event.get(name), Some(&Value::from(expected)));
        }
    }
}
