//! Regenerates Fig. 3 of the paper: subscription-matching (phase 2)
//! time versus subscription count, for all six panels.
//!
//! ```text
//! cargo run --release -p boolmatch-bench --bin fig3 -- [options]
//!   --panel a|b|c|d|e|f|all   which panel(s)             [all]
//!   --max N                   cap on subscription count  [50_000]
//!   --events N                events measured per point  [5]
//!   --seed N                  workload seed              [2005]
//!   --csv PATH                also write rows as CSV
//!   --full                    shorthand for --max 400_000
//! ```
//!
//! Measured times are host times; the `modeled` column applies the
//! paper's 512 MB memory wall (see DESIGN.md substitution 1) to the
//! phase-2 working set, which is what produces the paper's "sharp
//! bends". Shapes — who wins, where curves bend — are the reproduction
//! target, not absolute milliseconds (the paper's machine was a 1.8 GHz
//! uniprocessor).

use std::fs::File;
use std::io::BufWriter;

use boolmatch_bench::{mib, Args};
use boolmatch_core::EngineKind;
use boolmatch_workload::sweep::{self, SweepConfig, SweepRow};
use boolmatch_workload::{MemoryModel, Table1Config};

fn main() {
    let args = Args::parse();
    let table1 = Table1Config::paper();
    let max = if args.has("full") {
        args.get_usize("max", 400_000)
    } else {
        args.get_usize("max", 50_000)
    };
    let events = args.get_usize("events", 5);
    let seed = args.get_u64("seed", 2005);
    let which = args.get("panel").unwrap_or("all");

    let mut all_rows: Vec<SweepRow> = Vec::new();
    for (panel, predicates, fulfilled) in table1.figure3_panels() {
        if which != "all" && !which.contains(panel) {
            continue;
        }
        println!(
            "── Fig. 3({panel}): {predicates} predicates, {fulfilled} fulfilled predicates/event \
             (DNF factor {}x) ──",
            table1.transformation_factor(predicates)
        );
        println!(
            "{:<18} {:>9} {:>10} {:>12} {:>12} {:>11}",
            "engine", "subs", "units", "measured", "modeled", "phase2 MiB"
        );
        let config = SweepConfig {
            label: format!("fig3{panel}"),
            engines: EngineKind::ALL.to_vec(),
            subscription_counts: table1.panel_subscription_counts(predicates, max),
            predicates_per_sub: predicates,
            fulfilled_per_event: fulfilled,
            events_per_point: events,
            seed,
            memory_model: MemoryModel::paper(),
        };
        let rows = sweep::run_with_progress(&config, |row| {
            let bend = if row.modeled > row.measured {
                "  <- memory wall"
            } else {
                ""
            };
            println!(
                "{:<18} {:>9} {:>10} {:>9.3} ms {:>9.3} ms {:>11}{}",
                row.engine.label(),
                row.subscriptions,
                row.units,
                row.measured.as_secs_f64() * 1e3,
                row.modeled.as_secs_f64() * 1e3,
                mib(row.phase2_bytes),
                bend
            );
        });
        summarize_panel(panel, &rows);
        all_rows.extend(rows);
        println!();
    }

    if let Some(path) = args.get("csv") {
        let file = File::create(path).expect("create csv file");
        sweep::write_csv(&all_rows, &mut BufWriter::new(file)).expect("write csv");
        println!("wrote {} rows to {path}", all_rows.len());
    }
}

/// Prints the paper-shape checks for one panel: who wins at the largest
/// measured point, and where each engine crosses the 512 MB wall.
fn summarize_panel(panel: char, rows: &[SweepRow]) {
    let top = rows.iter().map(|r| r.subscriptions).max().unwrap_or(0);
    let at_top = |k: EngineKind| {
        rows.iter()
            .find(|r| r.engine == k && r.subscriptions == top)
    };
    let wall = |k: EngineKind| {
        rows.iter()
            .find(|r| r.engine == k && r.modeled > r.measured)
            .map(|r| format!("{}", r.subscriptions))
            .unwrap_or_else(|| "beyond sweep".to_owned())
    };
    if let (Some(nc), Some(c), Some(v)) = (
        at_top(EngineKind::NonCanonical),
        at_top(EngineKind::Counting),
        at_top(EngineKind::CountingVariant),
    ) {
        println!(
            "panel {panel} @ {top} subs: non-canonical {:.3} ms | counting {:.3} ms | variant {:.3} ms",
            nc.modeled.as_secs_f64() * 1e3,
            c.modeled.as_secs_f64() * 1e3,
            v.modeled.as_secs_f64() * 1e3,
        );
        println!(
            "memory wall first crossed at: non-canonical {} | counting {} | variant {}",
            wall(EngineKind::NonCanonical),
            wall(EngineKind::Counting),
            wall(EngineKind::CountingVariant),
        );
    }
}
