//! `bench_snapshot` — a self-contained, scriptable timing pass over the
//! repo's key hot paths, written as machine-readable JSON so the perf
//! trajectory across PRs has data instead of anecdotes.
//!
//! Unlike the Criterion benches (which exist for careful interactive
//! measurement), this binary is built to run unattended: it times each
//! named workload with a fixed warm-up + N-sample loop, records the
//! **median ns/op**, and writes everything to one JSON file
//! (`BENCH_PR10.json` by default). CI smoke-runs it in `--quick` mode
//! on every push.
//!
//! ```text
//! cargo run --release -p boolmatch-bench --bin bench_snapshot -- [--quick] [--out PATH]
//! ```
//!
//! * `--quick` — smaller corpora and fewer samples (CI / smoke mode).
//! * `--out PATH` — output path (default `BENCH_PR10.json`).
//!
//! The recorded numbers carry the same caveat as the concurrency
//! benches: on a single-core host the `parallel` rows measure the
//! fan-out's coordination overhead, not its speedup — the JSON embeds
//! the host's core count so readers can tell.

use std::sync::Arc;
use std::time::Instant;

use boolmatch_bench::Args;
use boolmatch_broker::{Broker, DeliveryPolicy, Subscription};
use boolmatch_core::{
    BatchScratch, EngineKind, FilterEngine, MatchScratch, PlacementPolicy, ScratchPool,
    ShardTranslation, ShardedEngine, SubscriptionId,
};
use boolmatch_types::Event;
use boolmatch_workload::scenarios::{
    HotKeyScenario, SelectiveScenario, StockScenario, ThroughputScenario,
};

/// One recorded measurement.
struct Sample {
    name: String,
    median_ns_per_op: f64,
    samples: usize,
    ops_per_sample: usize,
}

/// Times `op` as `samples` batches of `ops` calls (after one warm-up
/// batch) and returns the median ns per call.
fn measure(samples: usize, ops: usize, mut op: impl FnMut()) -> f64 {
    for _ in 0..ops {
        op();
    }
    let mut per_op: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ops {
                op();
            }
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    per_op.sort_by(f64::total_cmp);
    per_op[per_op.len() / 2]
}

fn record(
    out: &mut Vec<Sample>,
    name: impl Into<String>,
    samples: usize,
    ops: usize,
    op: impl FnMut(),
) {
    let name = name.into();
    let median = measure(samples, ops, op);
    println!("{name:<48} median: {median:>12.1} ns/op");
    out.push(Sample {
        name,
        median_ns_per_op: median,
        samples,
        ops_per_sample: ops,
    });
}

fn stock_events(n: usize) -> Vec<Arc<Event>> {
    let mut feed = StockScenario::new(99);
    (0..n).map(|_| Arc::new(feed.tick())).collect()
}

fn stock_broker(
    shards: usize,
    subscriptions: usize,
    parallel: bool,
) -> (Broker, Vec<Subscription>) {
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        .shards(shards)
        .parallel_threshold(if parallel { 0 } else { usize::MAX })
        .delivery(DeliveryPolicy::DropNewest { capacity: 4 })
        .build();
    let mut scenario = StockScenario::new(2_005);
    // The handles must stay alive for the measurement: dropping one
    // unsubscribes it.
    let subs = scenario
        .subscriptions(subscriptions)
        .iter()
        .map(|e| broker.subscribe_expr(e).expect("accepted"))
        .collect();
    (broker, subs)
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let out_path = args.get("out").unwrap_or("BENCH_PR10.json").to_owned();
    let (samples, ops) = if quick { (5, 200) } else { (15, 1_000) };
    let subscription_counts: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut results: Vec<Sample> = Vec::new();

    // --- End-to-end match cost per engine kind ---
    let corpus = if quick { 2_000 } else { 5_000 };
    let events = stock_events(64);
    for kind in EngineKind::ALL {
        // Default configuration (phase-1 index on) over the stock
        // corpus — the same subscription/event universe the broker rows
        // use, so phase 1 fulfils real predicates and phase 2 walks
        // real candidates: the end-to-end match cost, not the paper's
        // phase-2 isolation.
        let mut engine = kind.build();
        let mut scenario = StockScenario::new(2_005);
        for expr in scenario.subscriptions(corpus) {
            engine.subscribe(&expr).expect("within limits");
        }
        let mut scratch = MatchScratch::new();
        let mut at = 0usize;
        record(
            &mut results,
            format!("match_event/{kind}/{corpus}"),
            samples,
            ops,
            || {
                at = (at + 1) % events.len();
                engine.match_event_into(&events[at], &mut scratch);
            },
        );
    }

    // --- Sharded engine: sequential walk vs scoped parallel fan-out ---
    {
        let shards = 4;
        let mut engine = ShardedEngine::new(EngineKind::NonCanonical, shards);
        let mut scenario = StockScenario::new(2_005);
        for expr in scenario.subscriptions(corpus) {
            engine.subscribe(&expr).expect("accepted");
        }
        let scratches = ScratchPool::new(shards);
        let mut scratch = MatchScratch::new();
        let mut at = 0usize;
        record(
            &mut results,
            format!("sharded_engine/s{shards}/sequential/{corpus}"),
            samples,
            ops,
            || {
                at = (at + 1) % events.len();
                engine.match_event_into(&events[at], &mut scratch);
            },
        );
        record(
            &mut results,
            format!("sharded_engine/s{shards}/parallel_scoped/{corpus}"),
            samples,
            ops.min(200), // scoped spawn per op: keep the sample cheap
            || {
                at = (at + 1) % events.len();
                engine.match_event_parallel(&events[at], &scratches, &mut scratch);
            },
        );
    }

    // --- Broker publish: the parallel_fanout bench's key rows ---
    for &subscriptions in subscription_counts {
        for shards in [1usize, 4] {
            for (mode, parallel) in [("sequential", false), ("parallel", true)] {
                if shards == 1 && parallel {
                    continue; // no pipeline on one shard: same code path
                }
                let (broker, _receivers) = stock_broker(shards, subscriptions, parallel);
                let mut at = 0usize;
                record(
                    &mut results,
                    format!("parallel_fanout/subs{subscriptions}/s{shards}/{mode}"),
                    samples,
                    // Publishes over big corpora are slow; bound the batch.
                    ops.min(if subscriptions >= 100_000 { 50 } else { 200 }),
                    || {
                        at = (at + 1) % events.len();
                        broker.publish_arc(Arc::clone(&events[at]));
                    },
                );
            }
        }
    }

    // --- Batch publish (Arc<Event> zero-copy path) ---
    {
        let (broker, _receivers) = stock_broker(4, if quick { 1_000 } else { 10_000 }, false);
        let batch: Vec<Arc<Event>> = events.iter().take(64).cloned().collect();
        record(
            &mut results,
            "publish_batch/s4/batch64",
            samples,
            ops.min(50),
            || {
                broker.publish_batch(&batch);
            },
        );
    }

    // --- Batch-vectorized matching: the engines' batch kernels vs the
    // scalar walk, per engine kind × batch width, on the throughput
    // stream ---
    {
        // Each kind gets one engine over the throughput corpus plus a
        // shared 1024-event stream (every width divides 1024, so batch
        // slices tile it exactly). Rows: `scalar` is the pre-batch
        // per-event walk (`match_event_into`), `b{B}` is `match_batch`
        // at width B, both normalized to ns **per event**. The widths
        // in a pair sit close together, which is under this host's
        // sequential drift — so, as with `prune/*`, every configuration
        // is sampled round-robin within each round and the drift
        // cancels out of the A/B comparison.
        let corpus = if quick { 2_000 } else { 5_000 };
        let stream_len = 1_024usize;
        let engines: Vec<_> = EngineKind::ALL
            .iter()
            .map(|&kind| {
                let mut engine = kind.build();
                let mut scenario = ThroughputScenario::new(2_005);
                for expr in scenario.subscriptions(corpus) {
                    engine.subscribe(&expr).expect("within limits");
                }
                let stream: Vec<Arc<Event>> = scenario
                    .batch(stream_len)
                    .into_iter()
                    .map(Arc::new)
                    .collect();
                (kind, engine, stream)
            })
            .collect();
        // `None` marks the scalar reference row.
        const WIDTHS: [Option<usize>; 5] = [None, Some(1), Some(8), Some(64), Some(256)];
        let configs: Vec<(usize, Option<usize>)> = (0..engines.len())
            .flat_map(|e| WIDTHS.iter().map(move |&b| (e, b)))
            .collect();
        let events_per_round = 512usize;
        let mut batch_scratch = BatchScratch::new();
        let mut scalar_scratch = MatchScratch::new();
        let mut at = vec![0usize; configs.len()];
        let mut batches: Vec<Vec<f64>> = configs
            .iter()
            .map(|_| Vec::with_capacity(samples))
            .collect();
        for round in 0..=samples {
            for (i, &(e, b)) in configs.iter().enumerate() {
                let (_, engine, stream) = &engines[e];
                let start = Instant::now();
                match b {
                    None => {
                        for _ in 0..events_per_round {
                            at[i] = (at[i] + 1) % stream.len();
                            engine.match_event_into(&stream[at[i]], &mut scalar_scratch);
                        }
                    }
                    Some(b) => {
                        for _ in 0..events_per_round / b {
                            at[i] = (at[i] + b) % stream.len();
                            let lo = at[i];
                            engine.match_batch(&stream[lo..lo + b], &[], &mut batch_scratch);
                        }
                    }
                }
                if round > 0 {
                    // Round 0 is the warm-up (it also grows the shared
                    // scratches to steady state).
                    batches[i].push(start.elapsed().as_nanos() as f64 / events_per_round as f64);
                }
            }
        }
        for (i, &(e, b)) in configs.iter().enumerate() {
            let kind = engines[e].0;
            batches[i].sort_by(f64::total_cmp);
            let median = batches[i][batches[i].len() / 2];
            let row = match b {
                None => format!("batch/{kind}/scalar/{corpus}"),
                Some(b) => format!("batch/{kind}/b{b}/{corpus}"),
            };
            println!("{row:<48} median: {median:>12.1} ns/op");
            results.push(Sample {
                name: row,
                median_ns_per_op: median,
                samples,
                ops_per_sample: events_per_round,
            });
        }
    }

    // --- Rebalancing: migration cost and the publish paths around it ---
    {
        // A resize cycle (grow to 2S, spread, drain back to S) on a
        // loaded engine; the recorded figure is ns per *migrated
        // subscription*, the unit price of live migration.
        let shards = 4;
        let corpus = if quick { 2_000 } else { 10_000 };
        let mut engine = ShardedEngine::new(EngineKind::NonCanonical, shards);
        let mut scenario = StockScenario::new(2_005);
        for expr in scenario.subscriptions(corpus) {
            engine.subscribe(&expr).expect("accepted");
        }
        // Warm-up cycle, which also calibrates how many subscriptions
        // one cycle migrates (deterministic thereafter).
        let per_cycle = {
            let mut moved = engine.resize(shards * 2);
            moved += engine.rebalance();
            moved + engine.resize(shards)
        };
        let cycles = if quick { 3 } else { 7 };
        let mut per_move: Vec<f64> = (0..cycles)
            .map(|_| {
                let start = Instant::now();
                let mut moved = engine.resize(shards * 2);
                moved += engine.rebalance();
                moved += engine.resize(shards);
                start.elapsed().as_nanos() as f64 / moved.max(1) as f64
            })
            .collect();
        per_move.sort_by(f64::total_cmp);
        let median = per_move[per_move.len() / 2];
        let name = format!("rebalance/per_migrated_sub/s{shards}/{corpus}");
        println!("{name:<48} median: {median:>12.1} ns/op");
        results.push(Sample {
            name,
            median_ns_per_op: median,
            samples: cycles,
            ops_per_sample: per_cycle,
        });
    }

    // --- Shard-local matched-id translation (the publish hot path's
    // only per-match routing cost since the directory lock came off) ---
    {
        // A warm shard map of `corpus` residents and a typical matched
        // set of 64 local ids: one op = translating one event's matched
        // set, exactly what each publish pays per shard under the shard
        // lock it already holds.
        let residents = if quick { 20_000 } else { 100_000 };
        let mut translation = ShardTranslation::new();
        for local in 0..residents {
            translation.set(
                SubscriptionId::from_index(local),
                SubscriptionId::from_index(local * 4),
            );
        }
        let matched: Vec<SubscriptionId> = (0..64)
            .map(|i| SubscriptionId::from_index(i * (residents / 64)))
            .collect();
        let mut out: Vec<SubscriptionId> = Vec::with_capacity(64);
        record(
            &mut results,
            format!("translate/per_event/64of{residents}"),
            samples,
            ops,
            || {
                out.clear();
                out.extend(matched.iter().filter_map(|&l| translation.global_of(l)));
                assert_eq!(out.len(), 64);
            },
        );
    }

    // --- Background rebalance: publish cost under a hot-key skew with
    // frequency-weighted ticks running, and the cost of one tick ---
    {
        let shards = 4;
        let subs = if quick { 400 } else { 2_000 };
        let broker = Broker::builder()
            .engine(EngineKind::NonCanonical)
            .shards(shards)
            .delivery(DeliveryPolicy::DropNewest { capacity: 4 })
            .build();
        // stride = shard count: every hot subscription lands on shard 0
        // under churn-free placement — counts balanced, match load
        // maximally skewed (see HotKeyScenario).
        let mut scenario = HotKeyScenario::new(2_005, shards);
        let _receivers: Vec<Subscription> = scenario
            .subscriptions(subs)
            .iter()
            .map(|e| broker.subscribe_expr(e).expect("accepted"))
            .collect();
        let hot_events: Vec<Event> = scenario.events(64);
        let mut at = 0usize;
        record(
            &mut results,
            format!("background_rebalance/publish_hotkey/s{shards}/{subs}"),
            samples,
            ops.min(200),
            || {
                at = (at + 1) % hot_events.len();
                broker.publish(hot_events[at].clone());
            },
        );
        // One frequency-weighted tick (snapshot counters, pick the
        // hot/cool pair, migrate a small chunk). Publishes in between
        // keep the counters moving so ticks have real skew to act on.
        record(
            &mut results,
            format!("background_rebalance/tick/s{shards}/{subs}"),
            samples.min(7),
            ops.min(50),
            || {
                at = (at + 1) % hot_events.len();
                broker.publish(hot_events[at].clone());
                broker.rebalance_by_match_frequency(4);
            },
        );
        println!(
            "    (hot-key shard loads after ticks: {:?}, hits {:?})",
            broker.shard_loads(),
            broker.shard_match_hits()
        );
    }

    // --- Content-aware pruning: publish cost with and without shard
    // pruning, on a prunable and an unprunable population ---
    {
        // Selective workload, one group attribute per event, clustered
        // placement with groups == shards: each event has candidates on
        // (at most) one shard. The four rows form the PR's A/B grid:
        // `selective/*` bounds the pruning win on a partitionable
        // population; `unprunable/*` (the or-rooted twin, which the
        // conservative synopsis must keep always-candidate) bounds the
        // overhead of consulting synopses that never fire.
        let shards = 8;
        let subs = if quick { 800 } else { 4_000 };
        let configs = [
            ("selective/pruned", true, true),
            ("selective/unpruned", true, false),
            ("unprunable/pruned", false, true),
            ("unprunable/unpruned", false, false),
        ];
        let setups: Vec<(Broker, Vec<Subscription>, Vec<Event>)> = configs
            .iter()
            .map(|&(_, prunable, pruning)| {
                let broker = Broker::builder()
                    .engine(EngineKind::NonCanonical)
                    .shards(shards)
                    .placement(PlacementPolicy::ClusterByAttribute)
                    .shard_pruning(pruning)
                    .delivery(DeliveryPolicy::DropNewest { capacity: 4 })
                    .build();
                let mut scenario = if prunable {
                    SelectiveScenario::new(2_005, shards)
                } else {
                    SelectiveScenario::unprunable(2_005, shards)
                };
                let receivers: Vec<Subscription> = scenario
                    .subscriptions(subs)
                    .iter()
                    .map(|e| broker.subscribe_expr(e).expect("accepted"))
                    .collect();
                (broker, receivers, scenario.events(64))
            })
            .collect();
        // The rows in each A/B pair are a few percent apart, which is
        // under this host's sequential drift (allocator state, CPU
        // clock) — so sample the four configurations round-robin
        // *within* each round instead of one full row after another,
        // and the drift cancels out of the comparison.
        let ops_here = ops.min(200);
        let mut at = [0usize; 4];
        let mut batches: Vec<Vec<f64>> = (0..4).map(|_| Vec::with_capacity(samples)).collect();
        for round in 0..=samples {
            for (i, (broker, _receivers, group_events)) in setups.iter().enumerate() {
                let start = Instant::now();
                for _ in 0..ops_here {
                    at[i] = (at[i] + 1) % group_events.len();
                    broker.publish(group_events[at[i]].clone());
                }
                if round > 0 {
                    // Round 0 is the warm-up.
                    batches[i].push(start.elapsed().as_nanos() as f64 / ops_here as f64);
                }
            }
        }
        for (i, &(row, _, _)) in configs.iter().enumerate() {
            batches[i].sort_by(f64::total_cmp);
            let median = batches[i][batches[i].len() / 2];
            let name = format!("prune/{row}/s{shards}/{subs}");
            println!("{name:<48} median: {median:>12.1} ns/op");
            results.push(Sample {
                name,
                median_ns_per_op: median,
                samples,
                ops_per_sample: ops_here,
            });
        }
        let prunes: u64 = setups[0].0.shard_prune_counts().iter().sum();
        println!("    (selective/pruned skipped {prunes} shard visits)");
    }

    // --- Delivery tier: the enqueue hot path, and a stalled
    // subscriber's cost to everyone else ---
    {
        // One always-matching subscriber, drop-oldest so the queue is
        // permanently full at steady state: the recorded figure is the
        // full publish → match → snapshot → enqueue path with the
        // overflow branch taken on every op — the delivery tier's
        // worst-case per-notification price.
        let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
        let sub = broker
            .subscribe_with_policy("feed >= 0", DeliveryPolicy::DropOldest { capacity: 1_024 })
            .expect("accepted");
        let event = Arc::new(Event::builder().attr("feed", 1_i64).build());
        record(
            &mut results,
            "delivery/enqueue/drop_oldest",
            samples,
            ops,
            || {
                broker.publish_arc(Arc::clone(&event));
            },
        );
        drop(sub);

        // A/B: 64 healthy bounded subscribers, with and without one
        // fully stalled drop-newest neighbour. The two rows bounding
        // the tier's core promise — a dead consumer costs the fan-out
        // one capped enqueue, not a stall — should sit within a few
        // percent of each other. Sampled round-robin within each round
        // so sequential host drift cancels out of the comparison.
        let healthy = 64;
        let setups: Vec<(&str, Broker, Vec<Subscription>)> = [("absent", false), ("present", true)]
            .into_iter()
            .map(|(row, stalled)| {
                let broker = Broker::builder().engine(EngineKind::NonCanonical).build();
                let mut subs: Vec<Subscription> = (0..healthy)
                    .map(|_| {
                        broker
                            .subscribe_with_policy(
                                "feed >= 0",
                                DeliveryPolicy::DropOldest { capacity: 256 },
                            )
                            .expect("accepted")
                    })
                    .collect();
                if stalled {
                    // Never drained: permanently full within 64
                    // publishes, shedding on every one after.
                    subs.push(
                        broker
                            .subscribe_with_policy(
                                "feed >= 0",
                                DeliveryPolicy::DropNewest { capacity: 64 },
                            )
                            .expect("accepted"),
                    );
                }
                (row, broker, subs)
            })
            .collect();
        let ops_here = ops.min(200);
        let mut batches: Vec<Vec<f64>> = (0..2).map(|_| Vec::with_capacity(samples)).collect();
        for round in 0..=samples {
            for (i, (_, broker, _)) in setups.iter().enumerate() {
                let start = Instant::now();
                for _ in 0..ops_here {
                    broker.publish_arc(Arc::clone(&event));
                }
                if round > 0 {
                    // Round 0 is the warm-up.
                    batches[i].push(start.elapsed().as_nanos() as f64 / ops_here as f64);
                }
            }
        }
        for (i, (row, _, _)) in setups.iter().enumerate() {
            batches[i].sort_by(f64::total_cmp);
            let median = batches[i][batches[i].len() / 2];
            let name = format!("delivery/slow_consumer/{row}/subs{healthy}");
            println!("{name:<48} median: {median:>12.1} ns/op");
            results.push(Sample {
                name,
                median_ns_per_op: median,
                samples,
                ops_per_sample: ops_here,
            });
        }
    }

    // --- JSON output (hand-rolled: no serde in the offline workspace) ---
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"snapshot\": \"PR10 batch-vectorized matching: one predicate-table pass per batch, SoA lane kernels in the counting engines\",\n",
    );
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(
        "  \"note\": \"median ns/op per bench; on a single-core host the parallel rows show \
         fan-out coordination overhead, not speedup — compare on multi-core\",\n",
    );
    json.push_str("  \"benches\": {\n");
    for (i, s) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"median_ns_per_op\": {:.1}, \"samples\": {}, \"ops_per_sample\": {}}}{}\n",
            s.name,
            s.median_ns_per_op,
            s.samples,
            s.ops_per_sample,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("writing the snapshot JSON");
    println!("\nwrote {} benches to {out_path}", results.len());
}
