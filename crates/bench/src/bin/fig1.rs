//! Regenerates Fig. 1 of the paper: the example subscription tree
//! `s = (a>10 ∨ a≤5 ∨ b=1) ∧ (c≤20 ∨ c=30 ∨ d=5)` — its compacted
//! n-ary form, its byte encoding (§3.3) and the 9-conjunction DNF a
//! canonical engine is forced to register.
//!
//! ```text
//! cargo run -p boolmatch-bench --bin fig1
//! ```

use boolmatch_core::{encode, FilterEngine, NonCanonicalEngine};
use boolmatch_expr::{transform, Expr};

const FIG1: &str = "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)";

fn print_tree(expr: &Expr, indent: usize) {
    let pad = "  ".repeat(indent);
    match expr {
        Expr::Pred(p) => println!("{pad}{p}"),
        Expr::And(cs) => {
            println!("{pad}AND");
            cs.iter().for_each(|c| print_tree(c, indent + 1));
        }
        Expr::Or(cs) => {
            println!("{pad}OR");
            cs.iter().for_each(|c| print_tree(c, indent + 1));
        }
        Expr::Not(c) => {
            println!("{pad}NOT");
            print_tree(c, indent + 1);
        }
    }
}

fn main() {
    let s = Expr::parse(FIG1).expect("fig 1 subscription parses");
    println!("subscription source:\n  {FIG1}\n");

    println!("compacted subscription tree (paper Fig. 1):");
    print_tree(&transform::compact(&s), 1);

    // Register in the engine to obtain the interned byte encoding.
    let mut engine = NonCanonicalEngine::new();
    let id = engine.subscribe(&s).expect("subscribe");
    let tree = engine.subscription_tree(id).expect("tree");
    let bytes = encode(&tree).expect("encode");
    println!("\nbyte encoding (§3.3 layout, {} bytes):", bytes.len());
    for chunk in bytes.chunks(16) {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        println!("  {}", hex.join(" "));
    }

    let dnf = transform::to_dnf(&s, 100).expect("within limit");
    println!(
        "\nDNF a canonical engine must register ({} disjunctions, {} predicate slots \
         vs {} original predicates):",
        dnf.len(),
        dnf.predicate_slots(),
        s.predicate_count()
    );
    for (i, conjunct) in dnf.conjuncts().iter().enumerate() {
        let parts: Vec<String> = conjunct
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        println!("  {:>2}. {}", i + 1, parts.join(" and "));
    }
}
