//! Prints Table 1 of the paper — the experimental parameters — along
//! with the quantities our harness derives from it.
//!
//! ```text
//! cargo run -p boolmatch-bench --bin table1
//! ```

use boolmatch_workload::{MemoryModel, Table1Config};

fn main() {
    let t = Table1Config::paper();
    println!("Table 1. Parameters in experiments (paper values)");
    println!("--------------------------------------------------");
    println!("{:<44} {}", "CPU speed", format_args!("{} GHz", t.cpu_ghz));
    println!(
        "{:<44} {} MB",
        "Total machine memory",
        t.machine_memory_bytes / (1024 * 1024)
    );
    println!(
        "{:<44} {} - {}",
        "Number of subscriptions", t.min_subscriptions, t.max_subscriptions
    );
    println!(
        "{:<44} {} to {}",
        "Original (unique) predicates per subscription",
        t.predicates_per_subscription[0],
        t.predicates_per_subscription[2]
    );
    println!(
        "{:<44} {} to {}",
        "Subscriptions per subscription after transform",
        t.transformation_factor(t.predicates_per_subscription[0]),
        t.transformation_factor(t.predicates_per_subscription[2])
    );
    println!("{:<44} AND, OR", "Used Boolean operators");
    println!(
        "{:<44} {} - {}",
        "Matching predicates per event", t.fulfilled_per_event[0], t.fulfilled_per_event[1]
    );

    println!();
    println!("Derived quantities used by the harness");
    println!("--------------------------------------------------");
    for p in t.predicates_per_subscription {
        println!(
            "|p| = {p}: {} OR-groups -> {} DNF conjunctions of {} predicates each",
            p / 2,
            t.transformation_factor(p),
            t.transformed_predicates(p)
        );
    }
    let wall = MemoryModel::paper();
    println!(
        "memory-wall model: budget {} MiB (512 MB minus OS allowance), swap penalty {}x",
        wall.budget_bytes / (1024 * 1024),
        wall.swap_penalty
    );
    println!();
    println!("panel ladders (subscription counts per Fig. 3 panel, uncapped):");
    for (panel, predicates, fulfilled) in t.figure3_panels() {
        let ladder = t.panel_subscription_counts(predicates, usize::MAX);
        println!(
            "fig 3({panel}) |p|={predicates} fulfilled={fulfilled}: {} points up to {}",
            ladder.len(),
            ladder.last().unwrap()
        );
    }
}
