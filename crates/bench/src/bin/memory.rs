//! Regenerates the paper's memory/scalability analysis (§2, §4): the
//! per-subscription phase-2 working set of each engine, and the
//! subscription count at which each engine crosses the 512 MB wall —
//! the paper's observed bends are at ≈1.6 M original subscriptions for
//! 8 predicates and ≈0.7 M for 10 (Fig. 3 b/c), with the non-canonical
//! engine surviving "more than 4 times as many subscriptions".
//!
//! ```text
//! cargo run --release -p boolmatch-bench --bin memory -- [--probe N]
//! ```
//!
//! Methodology: register `N` and `2N` subscriptions (default probe
//! N = 10 000), take the byte delta as the marginal per-subscription
//! cost (cancelling fixed overheads), and project the wall crossing
//! as `budget / per_sub`.

use boolmatch_bench::{mib, Args};
use boolmatch_core::{
    CountingConfig, CountingEngine, CountingVariantEngine, EngineKind, FilterEngine,
    NonCanonicalConfig, NonCanonicalEngine,
};
use boolmatch_workload::{MemoryModel, Shape, SubscriptionGenerator, Table1Config};

fn build(kind: EngineKind) -> Box<dyn FilterEngine + Send + Sync> {
    match kind {
        EngineKind::NonCanonical => Box::new(NonCanonicalEngine::with_config(NonCanonicalConfig {
            enable_phase1_index: false,
            ..NonCanonicalConfig::default()
        })),
        EngineKind::Counting => Box::new(CountingEngine::with_config(CountingConfig {
            dnf_limit: 65_536,
            enable_phase1_index: false,
        })),
        EngineKind::CountingVariant => {
            Box::new(CountingVariantEngine::with_config(CountingConfig {
                dnf_limit: 65_536,
                enable_phase1_index: false,
            }))
        }
    }
}

fn phase2_bytes_at(kind: EngineKind, predicates: usize, n: usize, seed: u64) -> usize {
    let mut engine = build(kind);
    let mut gen = SubscriptionGenerator::new(seed, Shape::AndOfOrPairs, predicates);
    for _ in 0..n {
        engine.subscribe(&gen.generate()).expect("paper workload");
    }
    engine.memory_usage().phase2_bytes()
}

fn main() {
    let args = Args::parse();
    let probe = args.get_usize("probe", 10_000);
    let table1 = Table1Config::paper();
    let wall = MemoryModel::paper();

    println!(
        "memory-wall projection (probe {probe} -> {} subscriptions, budget {} MiB)",
        2 * probe,
        wall.budget_bytes / (1024 * 1024)
    );
    println!(
        "{:<6} {:<18} {:>14} {:>14} {:>16} {:>18}",
        "|p|", "engine", "MiB@probe", "B/sub", "wall at N", "paper bend"
    );

    for predicates in table1.predicates_per_subscription {
        // The paper reports where the *canonical* engines bend; the
        // non-canonical engine never bends inside the plotted range.
        let paper_bend = match predicates {
            8 => "~1,600,000",
            10 => "~700,000",
            _ => "beyond plot",
        };
        for kind in EngineKind::ALL {
            let at_probe = phase2_bytes_at(kind, predicates, probe, 1);
            let at_double = phase2_bytes_at(kind, predicates, 2 * probe, 1);
            let per_sub = (at_double.saturating_sub(at_probe)) as f64 / probe as f64;
            let wall_at = if per_sub > 0.0 {
                (wall.budget_bytes as f64 / per_sub) as u64
            } else {
                u64::MAX
            };
            let bend = match kind {
                EngineKind::NonCanonical => "beyond plot",
                _ => paper_bend,
            };
            println!(
                "{:<6} {:<18} {:>14} {:>14.1} {:>16} {:>18}",
                predicates,
                kind.label(),
                mib(at_probe),
                per_sub,
                wall_at,
                bend
            );
        }
    }

    println!();
    println!("reading the table:");
    println!("- B/sub: marginal phase-2 bytes per original subscription");
    println!("- wall at N: projected subscription count where the 512 MB budget is exhausted");
    println!("- paper bend: where Fig. 3 shows the canonical curves kink on the authors' machine");
    println!("- the reproduction target is the *ratio* between engines (paper: >4x at |p|=10),");
    println!("  not the absolute N; our accounting includes allocator headers the paper's");
    println!("  array-based tables avoided (see EXPERIMENTS.md).");
}
