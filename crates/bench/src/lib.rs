//! Shared plumbing for the figure-regeneration binaries and Criterion
//! benches.
//!
//! The binaries (`fig3`, `fig1`, `table1`, `memory`) regenerate the
//! paper's tables and figures; the Criterion benches
//! (`fig3_phase2`, `phase1_index`, `bptree`, `ablation_*`) measure the
//! same quantities under Criterion's statistics, plus the ablations
//! DESIGN.md calls out. See `EXPERIMENTS.md` at the workspace root for
//! the experiment index and recorded results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;

use boolmatch_core::{
    CountingConfig, CountingEngine, CountingVariantEngine, EngineKind, FilterEngine, FulfilledSet,
    NonCanonicalConfig, NonCanonicalEngine,
};
use boolmatch_workload::{synthetic_fulfilled, Shape, SubscriptionGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds an engine configured for phase-2 isolation experiments
/// (phase-1 indexes disabled; the harness synthesizes fulfilled sets,
/// exactly like the paper's experiments).
pub fn build_engine(kind: EngineKind) -> Box<dyn FilterEngine + Send + Sync> {
    match kind {
        EngineKind::NonCanonical => Box::new(NonCanonicalEngine::with_config(NonCanonicalConfig {
            enable_phase1_index: false,
            ..NonCanonicalConfig::default()
        })),
        EngineKind::Counting => Box::new(CountingEngine::with_config(CountingConfig {
            dnf_limit: 65_536,
            enable_phase1_index: false,
        })),
        EngineKind::CountingVariant => {
            Box::new(CountingVariantEngine::with_config(CountingConfig {
                dnf_limit: 65_536,
                enable_phase1_index: false,
            }))
        }
    }
}

/// Builds an engine and registers `n` paper-shape (Table 1)
/// subscriptions with `predicates` predicates each.
pub fn engine_with_corpus(
    kind: EngineKind,
    predicates: usize,
    n: usize,
    seed: u64,
) -> Box<dyn FilterEngine + Send + Sync> {
    let mut engine = build_engine(kind);
    let mut gen = SubscriptionGenerator::new(seed, Shape::AndOfOrPairs, predicates);
    for _ in 0..n {
        engine
            .subscribe(&gen.generate())
            .expect("paper workloads are within all engine limits");
    }
    engine
}

/// A synthetic fulfilled set of `k` predicates for an engine's
/// universe (capped at the universe size).
pub fn fulfilled_for(engine: &dyn FilterEngine, k: usize, seed: u64) -> FulfilledSet {
    let universe = engine.predicate_universe();
    let mut rng = StdRng::seed_from_u64(seed);
    FulfilledSet::from_ids(
        synthetic_fulfilled(&mut rng, universe, k.min(universe)),
        universe,
    )
}

/// A minimal `--flag value` argument parser for the harness binaries
/// (no external dependencies; flags may appear in any order).
///
/// # Examples
///
/// ```
/// use boolmatch_bench::Args;
///
/// let args = Args::parse_from(["--panel", "c", "--max", "50000"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get("panel"), Some("c"));
/// assert_eq!(args.get_usize("max", 10), 50_000);
/// assert_eq!(args.get_usize("events", 5), 5);
/// assert!(!args.has("full"));
/// ```
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (used in tests).
    pub fn parse_from(args: impl Iterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut pending: Option<String> = None;
        for arg in args {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some(prev) = pending.take() {
                    out.flags.push(prev);
                }
                pending = Some(name.to_owned());
            } else if let Some(name) = pending.take() {
                out.values.insert(name, arg);
            }
        }
        if let Some(prev) = pending {
            out.flags.push(prev);
        }
        out
    }

    /// The value of `--name value`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A numeric option with default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .map(|v| {
                v.replace('_', "")
                    .parse()
                    .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
            })
            .unwrap_or(default)
    }

    /// A numeric `u64` option with default.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get_usize(name, default as usize) as u64
    }

    /// Whether a bare `--name` flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Formats a byte count as mebibytes with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse_from(tokens.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn values_and_flags() {
        let a = parse(&["--panel", "b", "--full", "--events", "7"]);
        assert_eq!(a.get("panel"), Some("b"));
        assert!(a.has("full"));
        assert_eq!(a.get_usize("events", 1), 7);
        assert_eq!(a.get_usize("missing", 9), 9);
        assert!(!a.has("panel"));
    }

    #[test]
    fn underscores_in_numbers() {
        let a = parse(&["--max", "1_000_000"]);
        assert_eq!(a.get_usize("max", 0), 1_000_000);
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--full"]);
        assert!(a.has("full"));
    }

    #[test]
    fn mib_formatting() {
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(mib(0), "0.00");
    }
}
