//! B+ tree microbenchmarks against `std::collections::BTreeMap` — a
//! sanity check that the from-scratch range index substrate is in the
//! right performance class.

use std::collections::BTreeMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boolmatch_index::BPlusTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 100_000;

fn keys(seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N).map(|_| rng.random_range(0..10_000_000)).collect()
}

fn bptree(c: &mut Criterion) {
    let mut group = c.benchmark_group("bptree");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    let data = keys(1);
    let probe = keys(2);

    group.bench_function(BenchmarkId::new("insert", "bptree"), |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for &k in &data {
                t.insert(k, k);
            }
            std::hint::black_box(t.len())
        });
    });
    group.bench_function(BenchmarkId::new("insert", "std_btreemap"), |b| {
        b.iter(|| {
            let mut t = BTreeMap::new();
            for &k in &data {
                t.insert(k, k);
            }
            std::hint::black_box(t.len())
        });
    });

    let tree: BPlusTree<i64, i64> = data.iter().map(|&k| (k, k)).collect();
    let oracle: BTreeMap<i64, i64> = data.iter().map(|&k| (k, k)).collect();

    group.bench_function(BenchmarkId::new("get", "bptree"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in &probe[..1_000] {
                hits += usize::from(tree.get(k).is_some());
            }
            std::hint::black_box(hits)
        });
    });
    group.bench_function(BenchmarkId::new("get", "std_btreemap"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in &probe[..1_000] {
                hits += usize::from(oracle.contains_key(k));
            }
            std::hint::black_box(hits)
        });
    });

    group.bench_function(BenchmarkId::new("range_scan", "bptree"), |b| {
        b.iter(|| {
            let total: i64 = tree.range(1_000_000..2_000_000).map(|(_, v)| *v).sum();
            std::hint::black_box(total)
        });
    });
    group.bench_function(BenchmarkId::new("range_scan", "std_btreemap"), |b| {
        b.iter(|| {
            let total: i64 = oracle.range(1_000_000..2_000_000).map(|(_, v)| *v).sum();
            std::hint::black_box(total)
        });
    });

    group.finish();
}

criterion_group!(benches, bptree);
criterion_main!(benches);
