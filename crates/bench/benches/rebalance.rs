//! Load-aware rebalancing: what live migration costs and what it buys.
//!
//! Three measurements over the directory-routed sharded core:
//!
//! * `migration_cost` — a full resize cycle (`S → 2S`, rebalance onto
//!   the new shards, drain back to `S`) on a loaded engine. Throughput
//!   is reported in migrated subscriptions per second — the price of
//!   moving one subscription is one target-shard re-subscribe, one
//!   source-shard unsubscribe and a directory repoint.
//! * `publish_skew` — broker publish latency with the same live
//!   subscription count concentrated on few shards (skewed by draining
//!   churn) vs spread evenly after `rebalance()`. On a multi-core host
//!   the parallel fan-out's latency tracks the *hottest* shard, so the
//!   rebalanced rows should win; on a single core both do the same
//!   total work and only the fan-out overhead differs — the usual
//!   single-core caveat applies.
//! * `scenario_replay` — end-to-end ops/sec of a sharded engine
//!   consuming a `RebalanceScenario` stream (churn + rebalance + resize
//!   marks), the sustained-operations view of the whole feature.
//!
//! Run with `cargo bench -p boolmatch-bench --bench rebalance`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use boolmatch_broker::{Broker, DeliveryPolicy, Subscription};
use boolmatch_core::{EngineKind, FilterEngine, Matcher, ShardedEngine};
use boolmatch_types::Event;
use boolmatch_workload::scenarios::{ChurnOp, RebalanceOp, RebalanceScenario, StockScenario};

const SUBSCRIPTIONS: usize = 10_000;

fn loaded_engine(shards: usize, subscriptions: usize) -> ShardedEngine {
    let mut engine = ShardedEngine::new(EngineKind::NonCanonical, shards);
    let mut scenario = StockScenario::new(2_005);
    for expr in scenario.subscriptions(subscriptions) {
        engine.subscribe(&expr).expect("accepted");
    }
    engine
}

fn migration_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebalance/migration_cost");
    for shards in [2usize, 4, 8] {
        let mut engine = loaded_engine(shards, SUBSCRIPTIONS);
        // One calibration cycle to learn how many subscriptions a
        // cycle migrates (constant thereafter: the schedule is
        // deterministic).
        let moved_out = engine.resize(shards * 2) + engine.rebalance();
        let moved_back = engine.resize(shards);
        group.throughput(Throughput::Elements((moved_out + moved_back) as u64));
        group.bench_with_input(
            BenchmarkId::new("resize_cycle", format!("s{shards}")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut moved = engine.resize(shards * 2);
                    moved += engine.rebalance();
                    moved += engine.resize(shards);
                    moved
                });
            },
        );
    }
    group.finish();
}

/// A broker with `live` subscriptions concentrated on half of its
/// shards: subscribe 2× the target (round-robin, nothing skewed yet),
/// then drain every odd shard entirely by dropping its arrivals.
fn skewed_broker(shards: usize, live: usize) -> (Broker, Vec<Subscription>) {
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        .shards(shards)
        .parallel_threshold(0)
        .delivery(DeliveryPolicy::DropNewest { capacity: 4 })
        .build();
    let mut scenario = StockScenario::new(2_005);
    // 2× the target: arrivals land round-robin, shard i gets arrivals
    // ≡ i (mod shards).
    let mut subs: Vec<Option<Subscription>> = scenario
        .subscriptions(live * 2)
        .iter()
        .map(|e| Some(broker.subscribe_expr(e).expect("accepted")))
        .collect();
    // Drain the odd shards entirely: the surviving `live` subscriptions
    // sit on the even shards only.
    for (i, slot) in subs.iter_mut().enumerate() {
        if i % shards % 2 == 1 {
            drop(slot.take());
        }
    }
    let survivors: Vec<Subscription> = subs.into_iter().flatten().collect();
    (broker, survivors)
}

fn publish_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebalance/publish_skew");
    group.throughput(Throughput::Elements(1));
    let events: Vec<Arc<Event>> = {
        let mut feed = StockScenario::new(99);
        (0..64).map(|_| Arc::new(feed.tick())).collect()
    };
    for shards in [4usize, 8] {
        for rebalanced in [false, true] {
            let (broker, _subs) = skewed_broker(shards, SUBSCRIPTIONS);
            if rebalanced {
                broker.rebalance();
            }
            let label = if rebalanced { "rebalanced" } else { "skewed" };
            let mut at = 0usize;
            group.bench_with_input(
                BenchmarkId::new(label, format!("s{shards}")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        at = (at + 1) % events.len();
                        broker.publish_arc(Arc::clone(&events[at]))
                    });
                },
            );
        }
    }
    group.finish();
}

fn scenario_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebalance/scenario_replay");
    group.throughput(Throughput::Elements(256));
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("ops256", format!("s{shards}")),
            &shards,
            |b, &shards| {
                let mut matcher =
                    Matcher::new(ShardedEngine::new(EngineKind::NonCanonical, shards));
                let mut scenario = RebalanceScenario::new(7, 2_000, shards);
                let mut live: Vec<boolmatch_core::SubscriptionId> = Vec::new();
                b.iter(|| {
                    let mut delivered = 0usize;
                    for op in scenario.ops(256) {
                        match op {
                            RebalanceOp::Churn(ChurnOp::Subscribe(expr)) => {
                                live.push(matcher.subscribe(&expr).expect("accepted"));
                            }
                            RebalanceOp::Churn(ChurnOp::Unsubscribe(i)) => {
                                let id = live.remove(i);
                                matcher.unsubscribe(id).expect("live");
                            }
                            RebalanceOp::Churn(ChurnOp::Publish(event)) => {
                                delivered += matcher.match_event_into(&event).matched;
                            }
                            RebalanceOp::Rebalance => {
                                matcher.rebalance();
                            }
                            RebalanceOp::Resize(n) => {
                                matcher.resize(n);
                            }
                        }
                    }
                    delivered
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, migration_cost, publish_skew, scenario_replay);
criterion_main!(benches);
