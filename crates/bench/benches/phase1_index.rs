//! Phase-1 (predicate matching) microbenchmarks: the per-attribute
//! hash/B+ tree indexes of paper §3.2. Not a figure in the paper —
//! the paper excludes phase 1 from its comparison because it is
//! identical across engines — but the index substrate deserves its own
//! numbers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boolmatch_expr::{CompareOp, Predicate};
use boolmatch_index::PredicateIndex;
use boolmatch_types::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An index with `n` predicates spread over `attrs` attributes:
/// half equality (hash-indexed), half range (B+ tree-indexed).
fn build_index(n: usize, attrs: usize, seed: u64) -> PredicateIndex<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx = PredicateIndex::new();
    for i in 0..n {
        let attr = format!("a{}", rng.random_range(0..attrs));
        let value = rng.random_range(0..1_000_000_i64);
        let op = match i % 4 {
            0 => CompareOp::Eq,
            1 => CompareOp::Gt,
            2 => CompareOp::Le,
            _ => CompareOp::Ge,
        };
        idx.insert(i as u32, &Predicate::new(&attr, op, value));
    }
    idx
}

fn event(width: usize, seed: u64) -> Event {
    let mut rng = StdRng::seed_from_u64(seed);
    Event::from_pairs((0..width).map(|i| (format!("a{i}"), rng.random_range(0..1_000_000_i64))))
}

fn phase1(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_index");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    for &n in &[10_000usize, 100_000] {
        let idx = build_index(n, 64, 1);
        let ev = event(16, 2);
        group.bench_with_input(BenchmarkId::new("matching", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                idx.for_each_match(&ev, |id| out.push(id));
                std::hint::black_box(out.len())
            });
        });
    }

    // Insert/remove churn cost.
    group.bench_function("insert_remove_churn", |b| {
        let mut idx = build_index(10_000, 64, 3);
        let p = Predicate::new("a1", CompareOp::Gt, 123_456_i64);
        b.iter(|| {
            idx.insert(u32::MAX, &p);
            assert!(idx.remove(u32::MAX, &p));
        });
    });

    group.finish();
}

criterion_group!(benches, phase1);
criterion_main!(benches);
