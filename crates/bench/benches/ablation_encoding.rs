//! Ablation: byte-encoded subscription trees (paper §3.3) versus a
//! boxed AST — is the compact encoding worth it for evaluation speed,
//! on top of its memory savings?

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use boolmatch_core::{encode, eval_iterative, eval_recursive, FulfilledSet, IdExpr, PredicateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TREES: usize = 1_000;
const PREDS_PER_TREE: usize = 10;

/// Paper-shape tree over ids `[base, base + 10)`: AND of 5 binary ORs.
fn paper_tree(base: usize) -> IdExpr {
    IdExpr::And(
        (0..PREDS_PER_TREE / 2)
            .map(|g| {
                IdExpr::Or(vec![
                    IdExpr::Pred(PredicateId::from_index(base + 2 * g)),
                    IdExpr::Pred(PredicateId::from_index(base + 2 * g + 1)),
                ])
            })
            .collect(),
    )
}

fn ablation_encoding(c: &mut Criterion) {
    let trees: Vec<IdExpr> = (0..TREES).map(|i| paper_tree(i * PREDS_PER_TREE)).collect();
    let encoded: Vec<Vec<u8>> = trees.iter().map(|t| encode(t).unwrap()).collect();

    let universe = TREES * PREDS_PER_TREE;
    let mut rng = StdRng::seed_from_u64(9);
    let mut set = FulfilledSet::with_universe(universe);
    for _ in 0..universe / 5 {
        set.insert(PredicateId::from_index(rng.random_range(0..universe)));
    }

    let mut group = c.benchmark_group("ablation_encoding");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    group.bench_function("boxed_ast", |b| {
        b.iter(|| {
            let matched = trees.iter().filter(|t| t.eval(&set)).count();
            std::hint::black_box(matched)
        });
    });
    group.bench_function("encoded_recursive", |b| {
        b.iter(|| {
            let matched = encoded
                .iter()
                .filter(|bytes| eval_recursive(bytes, &set))
                .count();
            std::hint::black_box(matched)
        });
    });
    group.bench_function("encoded_iterative", |b| {
        b.iter(|| {
            let matched = encoded
                .iter()
                .filter(|bytes| eval_iterative(bytes, &set))
                .count();
            std::hint::black_box(matched)
        });
    });

    group.finish();
}

criterion_group!(benches, ablation_encoding);
criterion_main!(benches);
