//! Shard scaling under subscription churn: S ∈ {1, 2, 4, 8} engine
//! shards, publisher threads hammering `publish_batch` while a churn
//! thread keeps subscribing/unsubscribing — the proof artifact for the
//! sharded matching core.
//!
//! With one shard, every subscribe/unsubscribe write-locks the only
//! engine and stalls all matching; with S shards the same churn
//! write-locks `1/S` of the engines, so aggregate publish throughput
//! under churn must improve with S. The `elem/s` column is aggregate
//! events published per second across all publisher threads; compare
//! rows within one engine group.
//!
//! NOTE: like `concurrent_publish`, wall-clock *scaling* needs a
//! multi-core host — on a single core the rows mainly show reduced
//! lock-convoy overhead. The lock-level concurrency claim itself is
//! proven deterministically in `tests/shard_concurrency.rs`.
//!
//! Run with `cargo bench -p boolmatch-bench --bench shard_scaling`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use boolmatch_broker::{Broker, DeliveryPolicy, Subscription};
use boolmatch_core::EngineKind;
use boolmatch_types::Event;
use boolmatch_workload::scenarios::{ChurnOp, ChurnScenario, StockScenario};

const BASE_SUBSCRIPTIONS: usize = 1_000;
const EVENT_BATCH: usize = 1_024;
const PUBLISH_CHUNK: usize = 64;
const PUBLISHERS: usize = 4;

fn build_broker(
    kind: EngineKind,
    shards: usize,
) -> (Broker, Vec<boolmatch_broker::DeliveryReceiver>) {
    let broker = Broker::builder()
        .engine(kind)
        .shards(shards)
        // Bounded queues so nobody draining the detached receivers
        // cannot make memory the variable under test.
        .delivery(DeliveryPolicy::DropNewest { capacity: 64 })
        .build();
    let mut scenario = StockScenario::new(2_005);
    // The receivers must stay alive for the bench's duration: a dropped
    // receiver disconnects its subscription and delivery would prune it.
    let receivers: Vec<_> = scenario
        .subscriptions(BASE_SUBSCRIPTIONS)
        .iter()
        .map(|expr| {
            broker
                .subscribe_expr(expr)
                .expect("stock subscriptions are accepted by every engine")
                .detach()
        })
        .collect();
    (broker, receivers)
}

/// Publishes `per_thread` events per publisher thread (in
/// `publish_batch` chunks) while one churn thread subscribes and
/// unsubscribes continuously; returns the publishing wall-clock time.
fn publish_under_churn(broker: &Broker, per_thread: u64) -> Duration {
    // Events are Arc-wrapped once, outside the timed region: the batch
    // path shares one allocation per event across shards and delivery.
    let events: Vec<Arc<Event>> = {
        let mut feed = StockScenario::new(99);
        (0..EVENT_BATCH).map(|_| Arc::new(feed.tick())).collect()
    };
    let stop = AtomicBool::new(false);
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Churn-only op stream (no publishes): sustained
            // subscription writes racing the publishers' reads.
            let mut churn = ChurnScenario::new(7, 200).with_publish_ratio(0.0);
            let mut live: Vec<Subscription> = Vec::new();
            // ordering: plain quit flag — the churn loop only has to
            // notice the store eventually; no data is published
            // through it.
            while !stop.load(Ordering::Relaxed) {
                match churn.next_op() {
                    ChurnOp::Subscribe(expr) => {
                        live.push(broker.subscribe_expr(&expr).expect("accepted"));
                    }
                    ChurnOp::Unsubscribe(i) => {
                        live.remove(i);
                    }
                    ChurnOp::Publish(_) => unreachable!("publish ratio is 0"),
                }
            }
        });

        let start = Instant::now();
        std::thread::scope(|publishers| {
            for t in 0..PUBLISHERS {
                let publisher = broker.publisher();
                let events = &events;
                publishers.spawn(move || {
                    let mut sent = 0u64;
                    let mut at = t * PUBLISH_CHUNK; // stagger thread phases
                    while sent < per_thread {
                        let chunk = (per_thread - sent).min(PUBLISH_CHUNK as u64) as usize;
                        let from = at % (EVENT_BATCH - PUBLISH_CHUNK);
                        publisher.publish_batch(&events[from..from + chunk]);
                        sent += chunk as u64;
                        at += chunk;
                    }
                });
            }
        });
        elapsed = start.elapsed();
        // ordering: quit flag (see the load above); scope join is the
        // synchronisation point.
        stop.store(true, Ordering::Relaxed);
    });
    elapsed
}

fn shard_scaling(c: &mut Criterion) {
    for kind in EngineKind::ALL {
        let mut group = c.benchmark_group(format!("shard_scaling/{kind}"));
        group
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(1_500))
            .sample_size(10)
            // One element = one published event: aggregate events/sec.
            .throughput(Throughput::Elements(1));
        for shards in [1usize, 2, 4, 8] {
            let (broker, _receivers) = build_broker(kind, shards);
            group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
                b.iter_custom(|iters| {
                    let per_thread = iters.div_ceil(PUBLISHERS as u64).max(1);
                    publish_under_churn(&broker, per_thread)
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, shard_scaling);
criterion_main!(benches);
