//! Multi-threaded publish throughput: N publisher threads hammering one
//! broker, per engine kind — the proof artifact for the shared-read
//! matching API.
//!
//! Matching is read-mostly (an event match only *reads* the
//! subscription index), so with per-thread `MatchScratch` and the
//! engine behind a read lock, aggregate events/sec must **scale** with
//! publisher threads instead of collapsing onto a single write lock.
//! The `elem/s` column is aggregate events published per second across
//! all threads; compare a `threads=4` row against its `threads=1` row.
//!
//! Run with `cargo bench -p boolmatch-bench --bench concurrent_publish`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use boolmatch_broker::{Broker, DeliveryPolicy};
use boolmatch_core::EngineKind;
use boolmatch_types::Event;
use boolmatch_workload::scenarios::StockScenario;

const SUBSCRIPTIONS: usize = 2_000;
const EVENT_BATCH: usize = 1_024;

fn build_broker(kind: EngineKind) -> (Broker, Vec<boolmatch_broker::DeliveryReceiver>) {
    // Bounded queues so slow draining cannot make memory the variable
    // under test; drops exercise the same delivery path.
    let broker = Broker::builder()
        .engine(kind)
        .delivery(DeliveryPolicy::DropNewest { capacity: 64 })
        .build();
    let mut scenario = StockScenario::new(2_005);
    let receivers: Vec<_> = scenario
        .subscriptions(SUBSCRIPTIONS)
        .iter()
        .map(|expr| {
            broker
                .subscribe_expr(expr)
                .expect("stock subscriptions are accepted by every engine")
                .detach()
        })
        .collect();
    (broker, receivers)
}

fn publish_events(broker: &Broker, threads: usize, per_thread: u64) -> Duration {
    let events: Arc<Vec<Event>> = Arc::new({
        let mut feed = StockScenario::new(99);
        (0..EVENT_BATCH).map(|_| feed.tick()).collect()
    });
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let publisher = broker.publisher();
            let events = Arc::clone(&events);
            scope.spawn(move || {
                for i in 0..per_thread {
                    let event = &events[(t + i as usize) % EVENT_BATCH];
                    publisher.publish(event.clone());
                }
            });
        }
    });
    start.elapsed()
}

fn concurrent_publish(c: &mut Criterion) {
    for kind in EngineKind::ALL {
        let mut group = c.benchmark_group(format!("concurrent_publish/{kind}"));
        group
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(1_500))
            // One element = one published event, so the reported
            // throughput is aggregate events/sec across all threads.
            .throughput(Throughput::Elements(1));
        for threads in [1usize, 2, 4, 8] {
            let (broker, _receivers) = build_broker(kind);
            group.bench_with_input(
                BenchmarkId::new("threads", threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let per_thread = iters.div_ceil(threads as u64).max(1);
                        publish_events(&broker, threads, per_thread)
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, concurrent_publish);
criterion_main!(benches);
