//! Ablation: candidate deduplication strategy. The engines use a
//! generation-stamped array (O(1) per posting, no clearing between
//! events); the obvious alternative is a `HashSet`. This bench
//! justifies the choice.

use std::collections::HashSet;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated association-table output: `postings` subscription ids in
/// `0..n_subs`, with duplicates (the shared-predicate case).
fn postings(n_subs: usize, postings: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..postings)
        .map(|_| rng.random_range(0..n_subs as u32))
        .collect()
}

fn ablation_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dedup");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    for &(n_subs, n_postings) in &[(100_000usize, 50_000usize), (1_000_000, 200_000)] {
        let input = postings(n_subs, n_postings, 5);

        group.bench_with_input(
            BenchmarkId::new("stamped_array", format!("{n_subs}s_{n_postings}p")),
            &input,
            |b, input| {
                let mut stamps = vec![0u32; n_subs];
                let mut generation = 0u32;
                let mut candidates: Vec<u32> = Vec::new();
                b.iter(|| {
                    generation += 1;
                    candidates.clear();
                    for &s in input {
                        let st = &mut stamps[s as usize];
                        if *st != generation {
                            *st = generation;
                            candidates.push(s);
                        }
                    }
                    std::hint::black_box(candidates.len())
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("hash_set", format!("{n_subs}s_{n_postings}p")),
            &input,
            |b, input| {
                let mut seen: HashSet<u32> = HashSet::new();
                let mut candidates: Vec<u32> = Vec::new();
                b.iter(|| {
                    seen.clear();
                    candidates.clear();
                    for &s in input {
                        if seen.insert(s) {
                            candidates.push(s);
                        }
                    }
                    std::hint::black_box(candidates.len())
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, ablation_dedup);
criterion_main!(benches);
