//! Ablation: predicate sharing. The paper avoids shared predicates "in
//! order to directly observe the influence of increasing numbers of
//! subscriptions"; real workloads share heavily (everyone watches
//! `symbol = "IBM"`). Sharing shrinks the interned-predicate universe
//! but lengthens association lists — this bench shows the phase-2
//! effect on the non-canonical engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boolmatch_bench::{build_engine, fulfilled_for};
use boolmatch_core::{EngineKind, MatchScratch};
use boolmatch_workload::{Shape, SubscriptionGenerator};

const SUBS: usize = 20_000;
const FULFILLED: usize = 2_000;

fn ablation_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sharing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    // (label, generator): unique predicates vs two degrees of sharing.
    let generators: Vec<(&str, SubscriptionGenerator)> = vec![
        (
            "unique",
            SubscriptionGenerator::new(1, Shape::AndOfOrPairs, 6),
        ),
        (
            "pool10000",
            SubscriptionGenerator::new(1, Shape::AndOfOrPairs, 6)
                .with_attribute_pool(10_000)
                .with_domain(1_000),
        ),
        (
            "pool500",
            SubscriptionGenerator::new(1, Shape::AndOfOrPairs, 6)
                .with_attribute_pool(500)
                .with_domain(50),
        ),
    ];

    for (label, mut gen) in generators {
        let mut engine = build_engine(EngineKind::NonCanonical);
        for _ in 0..SUBS {
            engine.subscribe(&gen.generate()).unwrap();
        }
        let set = fulfilled_for(engine.as_ref(), FULFILLED, 3);
        let mut scratch = MatchScratch::new();
        let mut matched = Vec::new();
        group.bench_with_input(
            BenchmarkId::new("noncanonical_phase2", label),
            &(),
            |b, ()| {
                b.iter(|| {
                    let stats = engine.phase2(&set, &mut scratch, &mut matched);
                    std::hint::black_box(stats.candidates)
                });
            },
        );
        // Universe size goes in the bench id's console output via eprintln
        // once per configuration, for EXPERIMENTS.md.
        eprintln!(
            "ablation_sharing/{label}: {} distinct predicates for {SUBS} subscriptions",
            engine.predicate_count()
        );
    }

    group.finish();
}

criterion_group!(benches, ablation_sharing);
criterion_main!(benches);
