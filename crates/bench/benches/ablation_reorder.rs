//! Ablation: subscription tree reordering — the optimisation the paper
//! proposes and defers ("e.g. reordering subscription trees …; their
//! impact remains to be investigated", §3.2), implemented as
//! `transform::reorder` / `NonCanonicalConfig::reorder_trees`.
//!
//! Workload designed so ordering matters: each subscription is
//! `(wide OR of 8 predicates) AND (one rare predicate)`. Authored
//! order evaluates the wide OR first; reordering moves the rare
//! single predicate first, so unfulfilled candidates are refuted after
//! one set lookup.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boolmatch_core::{
    FilterEngine, FulfilledSet, MatchScratch, NonCanonicalConfig, NonCanonicalEngine, PredicateId,
};
use boolmatch_expr::{CompareOp, Expr, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SUBS: usize = 10_000;
const OR_WIDTH: usize = 8;

/// `(a{i}_0 = 1 or ... or a{i}_7 = 1) and gate{i} = 1`, authored with
/// the expensive group first.
fn subscription(i: usize) -> Expr {
    let group = Expr::or(
        (0..OR_WIDTH)
            .map(|j| Expr::pred(Predicate::new(&format!("a{i}_{j}"), CompareOp::Eq, 1_i64)))
            .collect(),
    );
    let gate = Expr::pred(Predicate::new(&format!("gate{i}"), CompareOp::Eq, 1_i64));
    Expr::and(vec![group, gate])
}

fn build(reorder: bool) -> NonCanonicalEngine {
    let mut engine = NonCanonicalEngine::with_config(NonCanonicalConfig {
        enable_phase1_index: false,
        reorder_trees: reorder,
    });
    for i in 0..SUBS {
        engine.subscribe(&subscription(i)).unwrap();
    }
    engine
}

/// Fulfilled set: many OR-group predicates hit (making lots of
/// candidates), but only a few gates — most candidates must be refuted.
fn fulfilled(engine: &NonCanonicalEngine, seed: u64) -> FulfilledSet {
    let universe = engine.predicate_universe();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = FulfilledSet::with_universe(universe);
    // Predicate ids are interned in syntactic order: for subscription i,
    // ids [i*(OR_WIDTH+1), i*(OR_WIDTH+1)+OR_WIDTH] with the gate last.
    for i in 0..SUBS {
        let base = i * (OR_WIDTH + 1);
        // Every subscription gets one fulfilled OR predicate -> becomes
        // a candidate.
        let j = rng.random_range(0..OR_WIDTH);
        set.insert(PredicateId::from_index(base + j));
        // Only 2% of gates are open.
        if rng.random_bool(0.02) {
            set.insert(PredicateId::from_index(base + OR_WIDTH));
        }
    }
    set
}

fn ablation_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reorder");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    for (label, reorder) in [("authored_order", false), ("reordered", true)] {
        let engine = build(reorder);
        let set = fulfilled(&engine, 3);
        let mut scratch = MatchScratch::new();
        let mut matched = Vec::new();
        group.bench_with_input(BenchmarkId::new("phase2", label), &(), |b, ()| {
            b.iter(|| {
                let stats = engine.phase2(&set, &mut scratch, &mut matched);
                std::hint::black_box(stats.matched)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, ablation_reorder);
criterion_main!(benches);
