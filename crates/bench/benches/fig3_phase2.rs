//! Criterion version of Fig. 3: subscription-matching (phase 2) time
//! per event, one benchmark group per figure panel, one series per
//! engine, at two corpus sizes.
//!
//! The `fig3` binary covers the full subscription-count ladder; this
//! bench gives Criterion-grade statistics at two representative sizes
//! per panel. Expected shape (paper §4.1): counting grows linearly
//! with corpus size, the variant and the non-canonical engine do not,
//! and the non-canonical engine does the least phase-2 work throughout.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boolmatch_bench::{engine_with_corpus, fulfilled_for};
use boolmatch_core::{EngineKind, FilterEngine, MatchScratch};
use boolmatch_workload::Table1Config;

fn bench_panel(c: &mut Criterion, panel: char, predicates: usize, fulfilled: usize) {
    let mut group = c.benchmark_group(format!("fig3{panel}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_200));
    for n in [5_000usize, 20_000] {
        for kind in EngineKind::ALL {
            let engine = engine_with_corpus(kind, predicates, n, 2_005);
            let set = fulfilled_for(engine.as_ref(), fulfilled, 7);
            let mut scratch = MatchScratch::new();
            let mut matched = Vec::new();
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |b, _| {
                b.iter(|| {
                    let stats = engine.phase2(&set, &mut scratch, &mut matched);
                    std::hint::black_box(stats.candidates)
                });
            });
        }
    }
    group.finish();
}

fn fig3(c: &mut Criterion) {
    for (panel, predicates, fulfilled) in Table1Config::paper().figure3_panels() {
        bench_panel(c, panel, predicates, fulfilled);
    }
}

criterion_group!(benches, fig3);
criterion_main!(benches);
