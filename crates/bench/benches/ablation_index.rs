//! Ablation: the range index behind phase 1 — the from-scratch B+ tree
//! (what the paper prescribes) versus a sorted-vector index. The sorted
//! vector wins raw scan constants but pays O(n) maintenance; the paper
//! workloads churn subscriptions, so the engines use the tree.

use std::ops::Bound;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boolmatch_index::{BPlusTree, SortedIndex};
use boolmatch_types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 100_000;

fn constants(seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N).map(|_| rng.random_range(0..1_000_000)).collect()
}

fn ablation_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_index");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    let data = constants(1);

    // Build cost.
    group.bench_function(BenchmarkId::new("build", "bptree"), |b| {
        b.iter(|| {
            let mut t: BPlusTree<Value, Vec<u32>> = BPlusTree::new();
            for (i, &k) in data.iter().enumerate() {
                let key = Value::from(k);
                if let Some(list) = t.get_mut(&key) {
                    list.push(i as u32);
                } else {
                    t.insert(key, vec![i as u32]);
                }
            }
            std::hint::black_box(t.len())
        });
    });
    group.bench_function(BenchmarkId::new("build", "sorted_vec_bulk"), |b| {
        b.iter(|| {
            let pairs: Vec<(Value, u32)> = data
                .iter()
                .enumerate()
                .map(|(i, &k)| (Value::from(k), i as u32))
                .collect();
            std::hint::black_box(SortedIndex::from_pairs(pairs).len())
        });
    });

    // Range-query cost (the phase-1 hot path: constants below an event
    // value).
    let mut tree: BPlusTree<Value, Vec<u32>> = BPlusTree::new();
    let mut sorted: SortedIndex<u32> = SortedIndex::new();
    for (i, &k) in data.iter().enumerate() {
        let key = Value::from(k);
        sorted.insert(key.clone(), i as u32);
        if let Some(list) = tree.get_mut(&key) {
            list.push(i as u32);
        } else {
            tree.insert(key, vec![i as u32]);
        }
    }
    let queries: Vec<i64> = constants(2)[..200].to_vec();

    group.bench_function(BenchmarkId::new("range_query", "bptree"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                let lo = Value::from(q.saturating_sub(5_000));
                let hi = Value::from(q);
                total += tree
                    .range((Bound::Included(lo), Bound::Excluded(hi)))
                    .map(|(_, v)| v.len())
                    .sum::<usize>();
            }
            std::hint::black_box(total)
        });
    });
    group.bench_function(BenchmarkId::new("range_query", "sorted_vec"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                let lo = Value::from(q.saturating_sub(5_000));
                let hi = Value::from(q);
                total += sorted.range(&(lo..hi)).count();
            }
            std::hint::black_box(total)
        });
    });

    // Maintenance cost under churn (the reason the tree wins overall).
    group.bench_function(BenchmarkId::new("churn", "bptree"), |b| {
        let key = Value::from(424_242_i64);
        b.iter(|| {
            tree.insert(key.clone(), vec![u32::MAX]);
            std::hint::black_box(tree.remove(&key));
        });
    });
    group.bench_function(BenchmarkId::new("churn", "sorted_vec"), |b| {
        let key = Value::from(424_242_i64);
        b.iter(|| {
            sorted.insert(key.clone(), u32::MAX);
            std::hint::black_box(sorted.remove(&key, &u32::MAX));
        });
    });

    group.finish();
}

criterion_group!(benches, ablation_index);
criterion_main!(benches);
