//! Sequential shard walk vs parallel shard fan-out for a single
//! publish: S ∈ {1, 2, 4, 8} shards × {1k, 10k, 100k} subscriptions —
//! the proof artifact for the worker-pool publish pipeline.
//!
//! The "sequential" rows pin `parallel_threshold` to `usize::MAX`
//! (always walk the shards one by one); the "parallel" rows pin it to
//! `0` (always fan out on the broker's persistent worker pool). Both
//! run the identical subscription corpus and event feed, so any gap is
//! purely the pipeline.
//!
//! NOTE: like `concurrent_publish` and `shard_scaling`, wall-clock
//! *speedup* needs a multi-core host — on the single-core build
//! container the parallel rows can only show the fan-out's coordination
//! overhead (rendezvous + handoff), not its win; the answer-identity
//! claim itself is proven deterministically in
//! `tests/parallel_fanout.rs`. With S = 1 both rows are the same code
//! path and should read identically (fan-out sanity baseline).
//!
//! Run with `cargo bench -p boolmatch-bench --bench parallel_fanout`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use boolmatch_broker::{Broker, DeliveryPolicy};
use boolmatch_core::EngineKind;
use boolmatch_types::Event;
use boolmatch_workload::scenarios::StockScenario;

const EVENTS: usize = 256;

fn build_broker(
    shards: usize,
    subscriptions: usize,
    parallel: bool,
) -> (Broker, Vec<boolmatch_broker::DeliveryReceiver>) {
    let broker = Broker::builder()
        .engine(EngineKind::NonCanonical)
        .shards(shards)
        .parallel_threshold(if parallel { 0 } else { usize::MAX })
        // Bounded queues: nobody drains the detached receivers, and
        // delivery cost must not become the variable under test.
        .delivery(DeliveryPolicy::DropNewest { capacity: 4 })
        .build();
    let mut scenario = StockScenario::new(2_005);
    // The receivers must stay alive for the bench's duration: a dropped
    // receiver disconnects its subscription and delivery would prune it.
    let receivers = scenario
        .subscriptions(subscriptions)
        .iter()
        .map(|expr| {
            broker
                .subscribe_expr(expr)
                .expect("stock subscriptions are accepted by every engine")
                .detach()
        })
        .collect();
    (broker, receivers)
}

fn parallel_fanout(c: &mut Criterion) {
    let events: Vec<Arc<Event>> = {
        let mut feed = StockScenario::new(99);
        (0..EVENTS).map(|_| Arc::new(feed.tick())).collect()
    };
    for subscriptions in [1_000usize, 10_000, 100_000] {
        let mut group = c.benchmark_group(format!("parallel_fanout/subs{subscriptions}"));
        group
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800))
            .sample_size(10)
            .throughput(Throughput::Elements(1));
        for shards in [1usize, 2, 4, 8] {
            for (mode, parallel) in [("sequential", false), ("parallel", true)] {
                let (broker, _receivers) = build_broker(shards, subscriptions, parallel);
                let mut at = 0usize;
                group.bench_function(format!("s{shards}/{mode}"), |b| {
                    b.iter(|| {
                        at = (at + 1) % EVENTS;
                        black_box(broker.publish_arc(Arc::clone(&events[at])))
                    });
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, parallel_fanout);
criterion_main!(benches);
