//! Ablation: short-circuit evaluation of subscription trees. The
//! encoded child widths (paper §3.3) exist so AND/OR can stop at the
//! first decisive child; this bench quantifies the win against a
//! full-evaluation variant that always visits every leaf.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boolmatch_core::{encode, eval_iterative, FulfilledSet, IdExpr, PredicateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TREES: usize = 1_000;
const PREDS: usize = 10;

fn paper_tree(base: usize) -> IdExpr {
    IdExpr::And(
        (0..PREDS / 2)
            .map(|g| {
                IdExpr::Or(vec![
                    IdExpr::Pred(PredicateId::from_index(base + 2 * g)),
                    IdExpr::Pred(PredicateId::from_index(base + 2 * g + 1)),
                ])
            })
            .collect(),
    )
}

/// Evaluates without short-circuiting: every leaf is consulted.
fn eval_full(tree: &IdExpr, set: &FulfilledSet) -> bool {
    match tree {
        IdExpr::Pred(id) => set.contains(*id),
        IdExpr::And(cs) => cs.iter().fold(true, |acc, c| acc & eval_full(c, set)),
        IdExpr::Or(cs) => cs.iter().fold(false, |acc, c| acc | eval_full(c, set)),
        IdExpr::Not(c) => !eval_full(c, set),
    }
}

fn ablation_shortcircuit(c: &mut Criterion) {
    let trees: Vec<IdExpr> = (0..TREES).map(|i| paper_tree(i * PREDS)).collect();
    let encoded: Vec<Vec<u8>> = trees.iter().map(|t| encode(t).unwrap()).collect();
    let universe = TREES * PREDS;

    let mut group = c.benchmark_group("ablation_shortcircuit");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500));

    // Two fulfillment densities: sparse sets fail fast (short-circuit
    // shines), dense sets succeed and must visit most groups anyway.
    for (label, density) in [("sparse_5pct", 0.05f64), ("dense_50pct", 0.5)] {
        let mut rng = StdRng::seed_from_u64(11);
        let mut set = FulfilledSet::with_universe(universe);
        for i in 0..universe {
            if rng.random_bool(density) {
                set.insert(PredicateId::from_index(i));
            }
        }

        group.bench_with_input(
            BenchmarkId::new("short_circuit_encoded", label),
            &(),
            |b, ()| {
                b.iter(|| {
                    let matched = encoded
                        .iter()
                        .filter(|bytes| eval_iterative(bytes, &set))
                        .count();
                    std::hint::black_box(matched)
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("full_eval_ast", label), &(), |b, ()| {
            b.iter(|| {
                let matched = trees.iter().filter(|t| eval_full(t, &set)).count();
                std::hint::black_box(matched)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, ablation_shortcircuit);
criterion_main!(benches);
